package meta

import "strings"

// Lexicon is a small synonym dictionary standing in for the WordNet
// repository the paper consults ("publically available lexical and semantic
// knowledge databases, e.g., WordNet"). It maps a word to its synonym set;
// the relation is kept symmetric by construction.
type Lexicon struct {
	synonyms map[string]map[string]struct{}
}

// NewLexicon returns an empty lexicon.
func NewLexicon() *Lexicon {
	return &Lexicon{synonyms: make(map[string]map[string]struct{})}
}

// DefaultLexicon returns a lexicon pre-loaded with the synonym groups that
// cover the biological curation vocabulary of the reproduction workload.
// Real deployments would load a WordNet dump through AddGroup.
func DefaultLexicon() *Lexicon {
	l := NewLexicon()
	groups := [][]string{
		{"gene", "locus", "cistron"},
		{"protein", "polypeptide", "enzyme"},
		{"publication", "article", "paper", "reference"},
		{"family", "group", "class", "clade"},
		{"sequence", "seq", "string"},
		{"name", "identifier", "label", "symbol"},
		{"id", "accession", "key"},
		{"length", "size", "extent"},
		{"function", "role", "activity"},
		{"organism", "species", "taxon"},
	}
	for _, g := range groups {
		l.AddGroup(g...)
	}
	return l
}

// AddGroup records that all the given words are mutual synonyms.
func (l *Lexicon) AddGroup(words ...string) {
	lowered := make([]string, len(words))
	for i, w := range words {
		lowered[i] = strings.ToLower(w)
	}
	for _, a := range lowered {
		set, ok := l.synonyms[a]
		if !ok {
			set = make(map[string]struct{})
			l.synonyms[a] = set
		}
		for _, b := range lowered {
			if a != b {
				set[b] = struct{}{}
			}
		}
	}
}

// AreSynonyms reports whether a and b belong to a common synonym group
// (case-insensitive). Identical words are not considered synonyms — exact
// matching is scored separately and higher.
func (l *Lexicon) AreSynonyms(a, b string) bool {
	la, lb := strings.ToLower(a), strings.ToLower(b)
	if la == lb {
		return false
	}
	set, ok := l.synonyms[la]
	if !ok {
		return false
	}
	_, ok = set[lb]
	return ok
}

// Synonyms returns the synonym set of a word (excluding the word itself).
func (l *Lexicon) Synonyms(word string) []string {
	set, ok := l.synonyms[strings.ToLower(word)]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
