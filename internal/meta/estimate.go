package meta

import (
	"strings"

	"nebula/internal/relational"
)

// Estimator derives structured-query cost and selectivity estimates from
// the repository's metadata: table cardinalities, index availability from
// the schema, the cached distinct-value statistics, and the column samples
// drawn for the signature-map generator. Estimates are deterministic — they
// read only catalog state fixed at dataset-build time — so a planner driven
// by them makes identical decisions at any worker count and with caches on
// or off. They are also allowed to be wrong: a planner must use them for
// ordering and budgeting only, never for correctness.
type Estimator struct {
	repo *Repository
}

// NewEstimator builds an estimator over the repository's catalog.
func NewEstimator(repo *Repository) *Estimator { return &Estimator{repo: repo} }

// SelectEstimate is the estimated execution profile of one structured query.
type SelectEstimate struct {
	// Cost is the estimated number of tuples the access path touches: the
	// expected index-bucket size when an indexed predicate can drive the
	// query, the full table cardinality otherwise.
	Cost float64
	// Rows is the estimated result cardinality after all predicates.
	Rows float64
	// Indexed reports whether an index can drive the query.
	Indexed bool
}

// EstimateSelect estimates one structured query against the catalog.
// Unknown tables or columns cost zero — the executor will reject them
// before scanning anything.
func (e *Estimator) EstimateSelect(q relational.Query) SelectEstimate {
	t, ok := e.repo.db.Table(q.Table)
	if !ok || t.Len() == 0 {
		return SelectEstimate{}
	}
	n := float64(t.Len())
	schema := t.Schema()
	est := SelectEstimate{Cost: n, Rows: n}
	for _, p := range q.Predicates {
		col, ok := schema.Column(p.Column)
		if !ok {
			continue
		}
		frac := e.predicateFraction(q.Table, col, p)
		est.Rows *= frac
		indexed := false
		switch p.Op {
		case relational.OpEq:
			indexed = col.Indexed || strings.EqualFold(col.Name, schema.PrimaryKey)
		case relational.OpContainsToken:
			indexed = col.FullText
		}
		if indexed {
			est.Indexed = true
			if bucket := n * frac; bucket < est.Cost {
				est.Cost = bucket
			}
		}
	}
	if est.Cost < 1 {
		est.Cost = 1
	}
	return est
}

// predicateFraction estimates the fraction of the table's rows one
// predicate keeps. Equality predicates use the distinct-value statistic
// (uniform-bucket assumption: 1/distinct). Token predicates consult the
// column sample when one was drawn — the fraction of sampled values
// containing the operand as a token — and fall back to the distinct-value
// heuristic otherwise. Prefix predicates have no statistic and assume a
// half-table match.
func (e *Estimator) predicateFraction(table string, col relational.Column, p relational.Predicate) float64 {
	ref := ColumnRef{Table: table, Column: col.Name}
	switch p.Op {
	case relational.OpEq:
		if sel := e.repo.ColumnSelectivity(ref); sel > 0 {
			return 1 / (sel * float64(tableLen(e.repo, table)))
		}
		return 1
	case relational.OpContainsToken:
		if sample, ok := e.repo.Sample(ref); ok && len(sample) > 0 {
			token := strings.ToLower(p.Operand.Str())
			hits := 0
			for _, v := range sample {
				if tokenInValue(v, token) {
					hits++
				}
			}
			frac := float64(hits) / float64(len(sample))
			if frac <= 0 {
				// Absent from the sample: rare, not impossible. Floor at
				// one expected row so cost ordering still separates rare
				// tokens from common ones.
				frac = 1 / float64(tableLen(e.repo, table))
			}
			return frac
		}
		if sel := e.repo.ColumnSelectivity(ref); sel > 0 {
			return 1 / (sel * float64(tableLen(e.repo, table)))
		}
		return 1
	default:
		return 0.5
	}
}

func tableLen(repo *Repository, table string) int {
	if t, ok := repo.db.Table(table); ok && t.Len() > 0 {
		return t.Len()
	}
	return 1
}

// tokenInValue reports whether the (lowercased) token occurs as a
// whitespace/punctuation-delimited word of the value — the same notion of
// token the inverted index and the ContainsToken predicate use, applied to
// sample strings for selectivity estimation.
func tokenInValue(value, token string) bool {
	if token == "" {
		return false
	}
	fields := strings.FieldsFunc(strings.ToLower(value), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9' || r == '_')
	})
	for _, f := range fields {
		if f == token {
			return true
		}
	}
	return false
}
