package meta

import (
	"sort"
	"strings"

	"nebula/internal/annotation"
	"nebula/internal/relational"
	"nebula/internal/textutil"
)

// LearnOptions parameterize ConceptRefs learning.
type LearnOptions struct {
	// MinSupport is the minimum fraction of inspected attachments of a
	// table in which a column's value must appear verbatim in the
	// annotation's text for the column to be proposed as a referencing
	// column of that table's concept.
	MinSupport float64
	// MaxAnnotations caps how many annotations are inspected (0 = all).
	MaxAnnotations int
}

// DefaultLearnOptions returns sensible learning defaults.
func DefaultLearnOptions() LearnOptions {
	return LearnOptions{MinSupport: 0.15, MaxAnnotations: 1000}
}

// ColumnSupport reports how often a column's values appeared inside the
// bodies of annotations attached to its table's tuples.
type ColumnSupport struct {
	Column      ColumnRef
	Attachments int
	Hits        int
	Support     float64
}

// LearnConcepts implements the extension the paper's footnote 2 sketches:
// "a module can be developed for learning from the available annotations
// the key concepts in the database that they frequently reference, and by
// which column(s)". For every true attachment (a, t) in the store, it
// checks which columns of t have their value appear as a token of a's
// body; columns referenced in at least MinSupport of a table's inspected
// attachments become the referencing columns of a learned concept for that
// table. The support table is returned alongside the proposals so a DB
// admin can review borderline columns.
func LearnConcepts(db *relational.Database, store *annotation.Store, opts LearnOptions) ([]*Concept, []ColumnSupport) {
	type key struct{ table, column string }
	hits := make(map[key]int)
	attachments := make(map[string]int) // lower(table) -> inspected attachments
	colNames := make(map[key]ColumnRef)

	inspected := 0
	for _, id := range store.IDs() {
		if opts.MaxAnnotations > 0 && inspected >= opts.MaxAnnotations {
			break
		}
		a, ok := store.Get(id)
		if !ok {
			continue
		}
		atts := store.Attachments(id, annotation.TrueAttachment)
		if len(atts) == 0 {
			continue
		}
		inspected++
		tokens := make(map[string]struct{})
		for _, tok := range textutil.Tokenize(a.Body) {
			tokens[tok.Lower] = struct{}{}
		}
		for _, att := range atts {
			row, ok := db.Lookup(att.Tuple)
			if !ok {
				continue
			}
			schema := row.Schema()
			tkey := strings.ToLower(schema.Name)
			attachments[tkey]++
			for i, col := range schema.Columns {
				v := strings.ToLower(row.Values[i].Str())
				if v == "" {
					continue
				}
				if _, found := tokens[v]; !found {
					continue
				}
				k := key{table: tkey, column: strings.ToLower(col.Name)}
				hits[k]++
				colNames[k] = ColumnRef{Table: schema.Name, Column: col.Name}
			}
		}
	}

	var supports []ColumnSupport
	for k, h := range hits {
		total := attachments[k.table]
		if total == 0 {
			continue
		}
		supports = append(supports, ColumnSupport{
			Column:      colNames[k],
			Attachments: total,
			Hits:        h,
			Support:     float64(h) / float64(total),
		})
	}
	sort.Slice(supports, func(i, j int) bool {
		if supports[i].Column.Table != supports[j].Column.Table {
			return supports[i].Column.Table < supports[j].Column.Table
		}
		if supports[i].Support != supports[j].Support {
			return supports[i].Support > supports[j].Support
		}
		return supports[i].Column.Column < supports[j].Column.Column
	})

	// Propose one concept per table whose supported columns pass the bar.
	byTable := make(map[string][]string)
	var tableOrder []string
	for _, s := range supports {
		if s.Support < opts.MinSupport {
			continue
		}
		tkey := strings.ToLower(s.Column.Table)
		if _, seen := byTable[tkey]; !seen {
			tableOrder = append(tableOrder, s.Column.Table)
		}
		byTable[tkey] = append(byTable[tkey], s.Column.Column)
	}
	sort.Strings(tableOrder)
	var concepts []*Concept
	for _, table := range tableOrder {
		cols := byTable[strings.ToLower(table)]
		refs := make([][]string, len(cols))
		for i, c := range cols {
			refs[i] = []string{c}
		}
		concepts = append(concepts, &Concept{
			Name:         table,
			Table:        table,
			ReferencedBy: refs,
		})
	}
	return concepts, supports
}
