package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := New[string](1024)
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put("a", 1, "alpha", 10)
	v, ok := c.Get("a", 1)
	if !ok || v != "alpha" {
		t.Fatalf("want hit alpha, got %q ok=%v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestCacheEpochInvalidation(t *testing.T) {
	c := New[int](1024)
	c.Put("k", 7, 42, 8)
	if _, ok := c.Get("k", 8); ok {
		t.Fatal("stale epoch must miss")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Misses != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("invalidation not accounted: %+v", st)
	}
	// The stale entry is gone even at the original epoch.
	if _, ok := c.Get("k", 7); ok {
		t.Fatal("invalidated entry must stay gone")
	}
}

func TestCacheLRUEvictionByBytes(t *testing.T) {
	c := New[int](30)
	c.Put("a", 1, 1, 10)
	c.Put("b", 1, 2, 10)
	c.Put("c", 1, 3, 10)
	c.Get("a", 1) // refresh a; b is now LRU
	c.Put("d", 1, 4, 10)
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k, 1); !ok {
			t.Fatalf("%s should still be cached", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Bytes != 30 {
		t.Fatalf("unexpected eviction stats: %+v", st)
	}
}

func TestCacheOversizedEntryRejected(t *testing.T) {
	c := New[int](16)
	c.Put("big", 1, 1, 64)
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry must not be stored: %+v", st)
	}
}

func TestCacheReplaceSameKey(t *testing.T) {
	c := New[int](100)
	c.Put("k", 1, 1, 10)
	c.Put("k", 2, 2, 20)
	v, ok := c.Get("k", 2)
	if !ok || v != 2 {
		t.Fatalf("want replaced value at new epoch, got %d ok=%v", v, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 20 {
		t.Fatalf("replace must not leak bytes: %+v", st)
	}
}

func TestCacheSetMaxBytesShrinkEvicts(t *testing.T) {
	c := New[int](100)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), 1, i, 10)
	}
	c.SetMaxBytes(25)
	st := c.Stats()
	if st.Bytes > 25 || st.Entries != 2 {
		t.Fatalf("shrink did not evict to budget: %+v", st)
	}
	// Most recently used survive.
	for _, k := range []string{"k8", "k9"} {
		if _, ok := c.Get(k, 1); !ok {
			t.Fatalf("%s should survive the shrink", k)
		}
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *LRU[int]
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("nil cache must miss")
	}
	c.Put("a", 1, 1, 1)
	c.SetMaxBytes(10)
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats must be zero: %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache length must be zero")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := New[int](1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%37)
				c.Put(key, uint64(i%3), i, 16)
				c.Get(key, uint64(i%3))
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries == 0 || st.Bytes == 0 {
		t.Fatalf("expected surviving entries: %+v", st)
	}
}
