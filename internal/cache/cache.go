// Package cache provides a small, concurrency-safe, byte-bounded LRU
// used by Nebula's three result-cache layers (relational scan cache,
// keyword structured-query cache, engine discovery cache).
//
// Every entry carries the epoch of the data it was computed from. A Get
// whose epoch no longer matches the stored one counts as an
// invalidation: the stale entry is dropped and the lookup reports a
// miss. Epochs are maintained by the callers (per-table mutation
// counters in internal/relational plus an engine-level annotation
// mutation counter), so the cache itself never needs to understand what
// was mutated — any mutation that could change a cached result must
// advance the epoch its key is checked against.
package cache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of one cache's counters. Counter
// fields are cumulative since construction; Entries/Bytes reflect
// current occupancy.
type Stats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	MaxBytes      int64 `json:"max_bytes"`
}

// Add accumulates another snapshot into s (occupancy sums too, which is
// what the aggregate reports want).
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.Entries += o.Entries
	s.Bytes += o.Bytes
	s.MaxBytes += o.MaxBytes
}

type entry[V any] struct {
	key   string
	epoch uint64
	value V
	cost  int64
}

// LRU is a mutex-guarded least-recently-used cache bounded by an
// approximate byte budget. The zero value is not usable; construct with
// New. A nil *LRU is safe to use: Get always misses (without counting),
// Put is a no-op, and Stats returns zeros — callers representing
// "caching disabled" as a nil cache need no branches.
type LRU[V any] struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	index    map[string]*list.Element

	hits          int64
	misses        int64
	evictions     int64
	invalidations int64
}

// New returns an LRU bounded to approximately maxBytes of cached value
// cost (as reported by callers on Put). maxBytes must be positive.
func New[V any](maxBytes int64) *LRU[V] {
	if maxBytes <= 0 {
		maxBytes = 1
	}
	return &LRU[V]{
		maxBytes: maxBytes,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
	}
}

// Get returns the value stored under key if its epoch matches. An entry
// stored under a different epoch is stale: it is removed, counted as an
// invalidation, and the lookup reports a miss.
func (c *LRU[V]) Get(key string, epoch uint64) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return zero, false
	}
	ent := el.Value.(*entry[V])
	if ent.epoch != epoch {
		c.removeLocked(el)
		c.invalidations++
		c.misses++
		return zero, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.value, true
}

// Put stores value under key at the given epoch, evicting
// least-recently-used entries until the byte budget holds. An entry
// whose cost alone exceeds the budget is not stored. Storing an
// existing key replaces it.
func (c *LRU[V]) Put(key string, epoch uint64, value V, cost int64) {
	if c == nil {
		return
	}
	if cost < 1 {
		cost = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost > c.maxBytes {
		return
	}
	if el, ok := c.index[key]; ok {
		c.removeLocked(el)
	}
	el := c.ll.PushFront(&entry[V]{key: key, epoch: epoch, value: value, cost: cost})
	c.index[key] = el
	c.bytes += cost
	c.evictLocked()
}

// SetMaxBytes adjusts the byte budget, evicting LRU entries if the new
// budget is smaller than current occupancy. Budgets below 1 clamp to 1.
func (c *LRU[V]) SetMaxBytes(maxBytes int64) {
	if c == nil {
		return
	}
	if maxBytes <= 0 {
		maxBytes = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = maxBytes
	c.evictLocked()
}

// Stats returns a snapshot of the cache counters and occupancy.
func (c *LRU[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.ll.Len(),
		Bytes:         c.bytes,
		MaxBytes:      c.maxBytes,
	}
}

// Len returns the current number of entries.
func (c *LRU[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *LRU[V]) evictLocked() {
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			return
		}
		c.removeLocked(el)
		c.evictions++
	}
}

func (c *LRU[V]) removeLocked(el *list.Element) {
	ent := el.Value.(*entry[V])
	c.ll.Remove(el)
	delete(c.index, ent.key)
	c.bytes -= ent.cost
}
