// Package workload generates the synthetic UniProt-like annotated database
// and the §8.1 annotation workload that Nebula's experiments run against.
//
// The paper evaluates on an 18 GB extract of the real UniProt repository
// (750k proteins, 1.3M genes, 12M publications). That data is not available
// offline, so this package synthesizes a database with the same topology —
// Protein —many:1→ Gene, Publication attached to gene and protein records —
// realistic identifier grammars, and publication texts that embed a
// controlled number of references to other tuples. Every experiment in §8
// is expressed in ratios and relative factors, which this generator
// preserves at laptop scale (see DESIGN.md, substitution 1).
package workload

// Config sizes the synthetic dataset.
type Config struct {
	// Genes is the number of gene records.
	Genes int
	// Proteins is the number of protein records (each references a gene).
	Proteins int
	// Publications is the number of base publication records. Base
	// publications act as the pre-existing annotations: their attachments
	// build the ACG, exactly as §8.1 step 4 prescribes.
	Publications int
	// RefsPerPublication bounds how many gene/protein tuples a base
	// publication is attached to (uniform in [min, max]).
	RefsPerPublicationMin int
	RefsPerPublicationMax int
	// Families is the number of distinct gene families.
	Families int
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
}

// The three dataset scales of Figure 10, reduced from the paper's
// 2.5/10/20 GB server datasets to laptop-memory scale while preserving the
// 1 : 5 : 10 size ratios and the relative table cardinalities
// (genes > proteins, publications ≈ 2× genes).

// SmallConfig returns the D_small scale.
func SmallConfig(seed int64) Config {
	return Config{
		Genes: 1500, Proteins: 900, Publications: 3000,
		RefsPerPublicationMin: 2, RefsPerPublicationMax: 6,
		Families: 40, Seed: seed,
	}
}

// MidConfig returns the D_mid scale (5× small).
func MidConfig(seed int64) Config {
	return Config{
		Genes: 7500, Proteins: 4500, Publications: 15000,
		RefsPerPublicationMin: 2, RefsPerPublicationMax: 6,
		Families: 40, Seed: seed,
	}
}

// LargeConfig returns the D_large scale (10× small).
func LargeConfig(seed int64) Config {
	return Config{
		Genes: 15000, Proteins: 9000, Publications: 30000,
		RefsPerPublicationMin: 2, RefsPerPublicationMax: 6,
		Families: 40, Seed: seed,
	}
}

// TinyConfig returns a minimal dataset for unit tests.
func TinyConfig(seed int64) Config {
	return Config{
		Genes: 120, Proteins: 60, Publications: 200,
		RefsPerPublicationMin: 2, RefsPerPublicationMax: 5,
		Families: 8, Seed: seed,
	}
}

// AnnotationSizes are the workload size classes L^m in bytes (Figure 10).
var AnnotationSizes = []int{50, 100, 500, 1000}

// RefClass identifies one of the L_{i-j} subsets.
type RefClass struct {
	// Min and Max bound the number of embedded references (inclusive).
	Min, Max int
}

// RefClasses are the three subsets of Figure 10/18: L_{1-3}, L_{4-6},
// L_{7-10}.
var RefClasses = []RefClass{{1, 3}, {4, 6}, {7, 10}}

func (c RefClass) String() string {
	return "L" + itoa(c.Min) + "-" + itoa(c.Max)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// AnnotationsPerCell is how many annotations each (size, refclass) cell of
// the workload contains (5 in the paper, 15 per L^m).
const AnnotationsPerCell = 5
