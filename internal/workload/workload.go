package workload

import (
	"fmt"
	"math/rand"

	"nebula/internal/annotation"
)

// buildWorkload creates the L^m × L_{i-j} mixture of §8.1 / Figure 18: for
// each size class m ∈ {50,100,500,1000} bytes, AnnotationsPerCell
// annotations from each reference class. The combination L^50 × L_{7-10}
// cannot physically fit, so — exactly as the paper's footnote does — the
// missing annotations are substituted by extras in the L_{1-3} and L_{4-6}
// subsets.
//
// Workload annotations receive ideal edges but are NOT added to the store
// or the ACG: they act as the "new annotations" the experiments insert.
func (d *Dataset) buildWorkload(rng *rand.Rand) error {
	seq := 0
	for _, size := range AnnotationSizes {
		for classIdx, rc := range RefClasses {
			targetClass := rc
			substitute := false
			if size == 50 && rc.Min >= 7 {
				substitute = true
			}
			for k := 0; k < AnnotationsPerCell; k++ {
				actual := targetClass
				if substitute {
					// Alternate the substitutes between the two feasible
					// subsets, as the paper adds them to L_{1-3} and L_{4-6}.
					actual = RefClasses[k%2]
				}
				nrefs := actual.Min + rng.Intn(actual.Max-actual.Min+1)
				nrefs = capRefsForSize(nrefs, size, actual)
				community := rng.Intn(d.numCommunities)
				if len(d.communityGenes[community]) == 0 {
					community = 0
				}
				id := fmt.Sprintf("wl:%d:%s:%d", size, actual, seq)
				seq++
				spec := d.composeAnnotation(rng, id, community, nrefs, size, 0.9)
				spec.SizeClass = size
				spec.Refs = actual
				if substitute {
					spec.Refs = actual // recorded under its actual class
				}
				if len(spec.Ann.Body) > size {
					return fmt.Errorf("workload: %s body %d bytes exceeds budget %d",
						id, len(spec.Ann.Body), size)
				}
				for _, t := range spec.Related {
					d.Ideal[annotation.EdgeKey{Annotation: spec.Ann.ID, Tuple: t}] = struct{}{}
				}
				d.Workload = append(d.Workload, spec)
				_ = classIdx
			}
		}
	}
	return nil
}

// capRefsForSize bounds the reference count so the compact rendering fits
// the byte budget: each reference costs ≈ 11 bytes ("and JW01234") plus the
// two concept words.
func capRefsForSize(nrefs, size int, rc RefClass) int {
	maxFit := (size - 16) / 11
	if maxFit < 1 {
		maxFit = 1
	}
	if nrefs > maxFit {
		nrefs = maxFit
	}
	if nrefs < rc.Min && maxFit >= rc.Min {
		nrefs = rc.Min
	}
	return nrefs
}

// WorkloadSet returns the workload annotations of one L^m size class,
// optionally restricted to one reference class (pass a zero RefClass for
// all).
func (d *Dataset) WorkloadSet(size int, rc RefClass) []*AnnotationSpec {
	var out []*AnnotationSpec
	for _, s := range d.Workload {
		if s.SizeClass != size {
			continue
		}
		if rc.Max != 0 && s.Refs != rc {
			continue
		}
		out = append(out, s)
	}
	return out
}

// TrainingSet returns n base publications usable as D_Training: each is an
// annotation whose complete attachment set is known.
func (d *Dataset) TrainingSet(n int) []*AnnotationSpec {
	if n > len(d.Base) {
		n = len(d.Base)
	}
	return d.Base[:n]
}
