package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vocabulary used to synthesize publication prose. The words are ordinary
// biological English: none collide with the identifier grammars, so they
// exercise the signature maps' noise rejection realistically.
var fillerWords = []string{
	"study", "shows", "observed", "expression", "regulation", "pathway",
	"analysis", "measured", "significant", "binding", "upstream",
	"downstream", "transcription", "mutant", "strain", "growth", "culture",
	"response", "stress", "temperature", "results", "suggest", "evidence",
	"interaction", "mechanism", "experiment", "levels", "increased",
	"decreased", "compared", "control", "samples", "conditions", "observed",
	"wildtype", "knockout", "assay", "cells", "membrane", "metabolic",
	"correlated", "induced", "repressed", "activity", "domain", "complex",
}

// noiseCodes are identifier-shaped tokens that are NOT database references:
// strain names, plasmids, lab codes. They fail every identifier pattern but
// look like identifiers, so they pass a loose ε cutoff (0.4) and become the
// false-positive queries of Figure 11(c).
var noiseCodes = []string{
	"K12", "T4", "pUC19", "DH5a", "BL21", "M9", "LB2", "pH7", "5ml", "x100",
}

// synonymRate is the fraction of references introduced by a lexicon synonym
// of the concept word ("locus" for gene, "polypeptide" for protein) instead
// of the canonical name. Synonym concept matches score 0.6 (WeightSynonym),
// so these references survive ε ≤ 0.6 but are missed at ε = 0.8 — the
// paper's "the tightest threshold 0.8 misses few embedded references".
const synonymRate = 0.15

// ghostRate is the per-padding-word probability of inserting a ghost
// reference: a pattern-conforming identifier that does not exist in this
// database (an object from another repository or species). Ghosts generate
// well-formed queries that are not embedded references — the
// false-positive mass that persists even at ε = 0.8.
const ghostRate = 0.04

// noiseRate is the per-padding-word probability of inserting a weak noise
// code instead of prose.
const noiseRate = 0.08

// mentionRate is the per-padding-word probability of inserting a mention of
// a real database object that is NOT among the annotation's attachments —
// e.g. a citation of an unrelated gene as contrast. In UniProt such
// mentioned-but-unlinked identifiers are exactly what makes an attachment
// prediction *plausible but wrong*: the discovery pipeline finds the tuple,
// but the ideal edge set does not contain the link. These populate the
// middle of the confidence spectrum and give BoundsSetting something real
// to balance.
const mentionRate = 0.05

// geneName derives the unique 3-lowercase+1-uppercase gene name of the i-th
// gene ("yaaA", "yaaB", ..., "yabA", ...), matching the paper's
// [a-z]{3}[A-Z] grammar.
func geneName(i int) string {
	upper := byte('A' + i%26)
	i /= 26
	c3 := byte('a' + i%26)
	i /= 26
	c2 := byte('a' + i%26)
	i /= 26
	c1 := byte('a' + i%26)
	return string([]byte{c1, c2, c3, upper})
}

// geneID renders the i-th gene identifier, following the paper's JW-prefix
// grammar widened to five digits for larger datasets: JW[0-9]{5}.
func geneID(i int) string { return fmt.Sprintf("JW%05d", i) }

// proteinID renders the i-th protein accession, P[0-9]{5} as in UniProt.
func proteinID(i int) string { return fmt.Sprintf("P%05d", i) }

// proteinName derives a unique protein-like name ("Abcdin") matching the
// grammar [A-Z][a-z]{4}in.
func proteinName(i int) string {
	b := make([]byte, 5)
	for k := 4; k >= 0; k-- {
		b[k] = byte('a' + i%26)
		i /= 26
	}
	b[0] = b[0] - 'a' + 'A'
	return string(b) + "in"
}

// proteinTypes is the controlled vocabulary (ontology) of the PType column.
var proteinTypes = []string{
	"structural", "enzyme", "transport", "receptor", "signaling", "motor",
}

// dnaSeq renders a short random nucleotide sequence.
func dnaSeq(rng *rand.Rand, n int) string {
	const bases = "ACGT"
	b := make([]byte, n)
	for i := range b {
		b[i] = bases[rng.Intn(4)]
	}
	return string(b)
}

// fillerSentence produces n words of prose.
func fillerSentence(rng *rand.Rand, n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = fillerWords[rng.Intn(len(fillerWords))]
	}
	return strings.Join(words, " ")
}

// conceptWord picks the word introducing a reference group: the canonical
// concept name, or (with synonymRate probability) a lexicon synonym.
func conceptWord(rng *rand.Rand, isProtein bool) string {
	if rng.Float64() < synonymRate {
		if isProtein {
			return "polypeptide"
		}
		return "locus"
	}
	if isProtein {
		return "protein"
	}
	return "gene"
}

// refPhrase renders one embedded reference and returns the phrase plus the
// identifying keyword it embeds. isProtein selects the table; byName picks
// the Name column instead of the ID column; concept is the introducing
// concept word (from conceptWord).
func refPhrase(rng *rand.Rand, concept string, isProtein, byName bool, idx int) (phrase, keyword string) {
	if isProtein {
		if byName {
			keyword = proteinName(idx)
		} else {
			keyword = proteinID(idx)
		}
	} else {
		if byName {
			keyword = geneName(idx)
		} else {
			keyword = geneID(idx)
		}
	}
	switch form := rng.Intn(3); {
	case form == 0:
		return "the " + concept + " " + keyword, keyword
	case form == 1 && !byName:
		// Type-1 triple: concept word + column word + value.
		return concept + " id " + keyword, keyword
	default:
		return concept + " " + keyword, keyword
	}
}

// ghostIdentifier renders a pattern-conforming identifier guaranteed not to
// exist in a database with the given table sizes.
func ghostIdentifier(rng *rand.Rand, genes, proteins int) string {
	if rng.Intn(2) == 0 {
		return geneID(genes + rng.Intn(90000-genes))
	}
	return proteinID(proteins + rng.Intn(90000-proteins))
}
