package workload

import (
	"regexp"
	"strings"
	"testing"

	"nebula/internal/annotation"
	"nebula/internal/relational"
)

func tiny(t testing.TB) *Dataset {
	t.Helper()
	d, err := Generate(TinyConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateTableSizes(t *testing.T) {
	d := tiny(t)
	cfg := d.Config
	if got := d.DB.MustTable("Gene").Len(); got != cfg.Genes {
		t.Errorf("genes = %d, want %d", got, cfg.Genes)
	}
	if got := d.DB.MustTable("Protein").Len(); got != cfg.Proteins {
		t.Errorf("proteins = %d, want %d", got, cfg.Proteins)
	}
	if got := d.DB.MustTable("Publication").Len(); got != cfg.Publications {
		t.Errorf("publications = %d, want %d", got, cfg.Publications)
	}
	if err := d.DB.ValidateForeignKeys(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(TinyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TinyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Workload) != len(b.Workload) {
		t.Fatalf("workload sizes differ: %d vs %d", len(a.Workload), len(b.Workload))
	}
	for i := range a.Workload {
		if a.Workload[i].Ann.Body != b.Workload[i].Ann.Body {
			t.Fatalf("workload %d bodies differ", i)
		}
	}
	if a.Graph.Edges() != b.Graph.Edges() {
		t.Error("ACG differs between equal seeds")
	}
	c, err := Generate(TinyConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Workload) > 0 && len(c.Workload) > 0 &&
		a.Workload[0].Ann.Body == c.Workload[0].Ann.Body {
		t.Error("different seeds produced identical bodies")
	}
}

func TestIdentifierGrammars(t *testing.T) {
	gid := regexp.MustCompile(`^JW[0-9]{5}$`)
	gname := regexp.MustCompile(`^[a-z]{3}[A-Z]$`)
	pid := regexp.MustCompile(`^P[0-9]{5}$`)
	pname := regexp.MustCompile(`^[A-Z][a-z]{4}in$`)
	for _, i := range []int{0, 1, 25, 26, 999, 17575} {
		if !gid.MatchString(geneID(i)) {
			t.Errorf("geneID(%d) = %q", i, geneID(i))
		}
		if !gname.MatchString(geneName(i)) {
			t.Errorf("geneName(%d) = %q", i, geneName(i))
		}
		if !pid.MatchString(proteinID(i)) {
			t.Errorf("proteinID(%d) = %q", i, proteinID(i))
		}
		if !pname.MatchString(proteinName(i)) {
			t.Errorf("proteinName(%d) = %q", i, proteinName(i))
		}
	}
	// Uniqueness over a prefix range.
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		n := geneName(i)
		if seen[n] {
			t.Fatalf("duplicate gene name %q at %d", n, i)
		}
		seen[n] = true
	}
}

func TestBaseAnnotationsWiredEverywhere(t *testing.T) {
	d := tiny(t)
	if d.Store.Len() != d.Config.Publications {
		t.Errorf("store annotations = %d", d.Store.Len())
	}
	if d.Graph.Nodes() == 0 || d.Graph.Edges() == 0 {
		t.Error("ACG empty")
	}
	// Every base attachment is a true attachment and an ideal edge.
	for _, spec := range d.Base[:10] {
		for _, tuple := range spec.Related {
			att, ok := d.Store.Edge(spec.Ann.ID, tuple)
			if !ok || att.Type != annotation.TrueAttachment {
				t.Fatalf("base attachment missing: %s -> %s", spec.Ann.ID, tuple)
			}
			if _, ok := d.Ideal[annotation.EdgeKey{Annotation: spec.Ann.ID, Tuple: tuple}]; !ok {
				t.Fatalf("ideal edge missing: %s -> %s", spec.Ann.ID, tuple)
			}
			if _, ok := d.DB.Lookup(tuple); !ok {
				t.Fatalf("related tuple %s not in DB", tuple)
			}
		}
	}
	// Store quality against ideal: base edges all true, workload edges all
	// missing → F_P = 0, F_N = workload share.
	m := d.Store.QualityTrueOnly(d.Ideal)
	if m.FalsePositiveRatio != 0 {
		t.Errorf("F_P = %f", m.FalsePositiveRatio)
	}
	if m.FalseNegativeRatio <= 0 {
		t.Error("expected missing workload edges")
	}
}

func TestWorkloadComposition(t *testing.T) {
	d := tiny(t)
	// 4 size classes × 3 ref classes × 5 = 60 annotations.
	if len(d.Workload) != 60 {
		t.Fatalf("workload = %d annotations", len(d.Workload))
	}
	for _, spec := range d.Workload {
		if len(spec.Ann.Body) > spec.SizeClass {
			t.Errorf("%s: body %d > budget %d", spec.Ann.ID, len(spec.Ann.Body), spec.SizeClass)
		}
		if len(spec.Related) == 0 || len(spec.Related) != len(spec.RefKeywords) {
			t.Errorf("%s: related/keywords mismatch: %d vs %d",
				spec.Ann.ID, len(spec.Related), len(spec.RefKeywords))
		}
		// Reference counts respect the class bounds; small size budgets may
		// cap the count below the class minimum (the paper's L^50 footnote),
		// but never above the maximum.
		if len(spec.Related) > spec.Refs.Max {
			t.Errorf("%s: %d refs above %s", spec.Ann.ID, len(spec.Related), spec.Refs)
		}
		if spec.SizeClass >= 500 {
			if len(spec.Related) < spec.Refs.Min {
				t.Errorf("%s: %d refs below %s", spec.Ann.ID, len(spec.Related), spec.Refs)
			}
		}
		// Workload annotations are NOT in the store or the ACG.
		if _, ok := d.Store.Get(spec.Ann.ID); ok {
			t.Errorf("%s leaked into the store", spec.Ann.ID)
		}
		// But their edges are in the ideal set.
		for _, tuple := range spec.Related {
			if _, ok := d.Ideal[annotation.EdgeKey{Annotation: spec.Ann.ID, Tuple: tuple}]; !ok {
				t.Errorf("%s: ideal edge missing for %s", spec.Ann.ID, tuple)
			}
		}
	}
}

func TestWorkloadBodiesEmbedKeywords(t *testing.T) {
	d := tiny(t)
	for _, spec := range d.Workload {
		for _, kw := range spec.RefKeywords {
			if !strings.Contains(spec.Ann.Body, kw) {
				t.Errorf("%s: keyword %q not in body %q", spec.Ann.ID, kw, spec.Ann.Body)
			}
		}
		// Concept words (or their synonyms) present so the references are
		// discoverable.
		body := strings.ToLower(spec.Ann.Body)
		hasConcept := false
		for _, w := range []string{"gene", "locus", "protein", "polypeptide"} {
			if strings.Contains(body, w) {
				hasConcept = true
			}
		}
		if !hasConcept {
			t.Errorf("%s: no concept word in body %q", spec.Ann.ID, spec.Ann.Body)
		}
	}
}

func TestWorkloadSetFiltering(t *testing.T) {
	d := tiny(t)
	l100 := d.WorkloadSet(100, RefClass{})
	if len(l100) != 15 {
		t.Errorf("L^100 = %d annotations", len(l100))
	}
	l100mid := d.WorkloadSet(100, RefClass{4, 6})
	if len(l100mid) != 5 {
		t.Errorf("L^100.L_4-6 = %d annotations", len(l100mid))
	}
	for _, s := range l100mid {
		if s.Refs != (RefClass{4, 6}) {
			t.Errorf("wrong class: %v", s.Refs)
		}
	}
}

func TestFocalAndHidden(t *testing.T) {
	d := tiny(t)
	spec := d.WorkloadSet(500, RefClass{4, 6})[0]
	r := len(spec.Related)
	f := spec.Focal(2)
	h := spec.Hidden(2)
	if len(f) != 2 || len(h) != r-2 {
		t.Errorf("focal/hidden split: %d/%d of %d", len(f), len(h), r)
	}
	// Degenerate deltas clamp.
	if len(spec.Focal(0)) != 1 {
		t.Error("Focal(0) should clamp to 1")
	}
	if len(spec.Focal(100)) != r {
		t.Error("Focal(100) should clamp to len(Related)")
	}
	if len(spec.Hidden(100)) != 0 {
		t.Error("Hidden(100) should be empty")
	}
}

func TestTrainingSet(t *testing.T) {
	d := tiny(t)
	tr := d.TrainingSet(10)
	if len(tr) != 10 {
		t.Fatalf("training = %d", len(tr))
	}
	if len(d.TrainingSet(10*1000*1000)) != len(d.Base) {
		t.Error("oversized training request should clamp")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero config should fail")
	}
	bad := TinyConfig(1)
	bad.RefsPerPublicationMin = 5
	bad.RefsPerPublicationMax = 2
	if _, err := Generate(bad); err == nil {
		t.Error("inverted refs range should fail")
	}
}

func TestRefClassString(t *testing.T) {
	if (RefClass{1, 3}).String() != "L1-3" || (RefClass{7, 10}).String() != "L7-10" {
		t.Error("RefClass.String wrong")
	}
}

// TestFocalHiddenPartitionProperty: for every spec and every Δ, Focal(Δ)
// and Hidden(Δ) partition Related.
func TestFocalHiddenPartitionProperty(t *testing.T) {
	d := tiny(t)
	for _, spec := range d.Workload {
		for delta := 0; delta <= len(spec.Related)+1; delta++ {
			f, h := spec.Focal(delta), spec.Hidden(delta)
			if len(f)+len(h) != len(spec.Related) {
				t.Fatalf("%s Δ=%d: %d+%d != %d", spec.Ann.ID, delta, len(f), len(h), len(spec.Related))
			}
			seen := map[relational.TupleID]bool{}
			for _, x := range f {
				seen[x] = true
			}
			for _, x := range h {
				if seen[x] {
					t.Fatalf("%s Δ=%d: focal/hidden overlap on %v", spec.Ann.ID, delta, x)
				}
			}
		}
	}
}

// TestWorkloadIdealConsistency: every Related tuple resolves in the DB and
// is recorded in the ideal edge set; RefKeywords stay aligned.
func TestWorkloadIdealConsistency(t *testing.T) {
	d := tiny(t)
	for _, spec := range append(append([]*AnnotationSpec{}, d.Workload...), d.Base...) {
		if len(spec.Related) != len(spec.RefKeywords) {
			t.Fatalf("%s: related/keyword length mismatch", spec.Ann.ID)
		}
		for i, tuple := range spec.Related {
			row, ok := d.DB.Lookup(tuple)
			if !ok {
				t.Fatalf("%s: tuple %v missing from DB", spec.Ann.ID, tuple)
			}
			// The keyword identifies the tuple: it equals one of the row's
			// cell values.
			kw := spec.RefKeywords[i]
			match := false
			for _, v := range row.Values {
				if v.Str() == kw {
					match = true
				}
			}
			if !match {
				t.Fatalf("%s: keyword %q does not identify %v", spec.Ann.ID, kw, tuple)
			}
			if _, ok := d.Ideal[annotation.EdgeKey{Annotation: spec.Ann.ID, Tuple: tuple}]; !ok {
				t.Fatalf("%s: ideal edge missing for %v", spec.Ann.ID, tuple)
			}
		}
	}
}
