package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/meta"
	"nebula/internal/relational"
)

// Dataset is a fully assembled experimental environment: the database, the
// pre-existing annotations (base publications) in the annotation store, the
// ACG built from them, the populated NebulaMeta repository, the ground
// truth (ideal edge set), and the workload of new annotations to insert.
type Dataset struct {
	// Config the dataset was generated from.
	Config Config
	// DB is the relational database (Gene, Protein, Publication).
	DB *relational.Database
	// Store holds the base publications as annotations with their true
	// attachments.
	Store *annotation.Store
	// Meta is the populated NebulaMeta repository.
	Meta *meta.Repository
	// Graph is the ACG built from the base annotations only — the workload
	// annotations are excluded, exactly as §8.1 step 4 prescribes.
	Graph *acg.Graph
	// Ideal is E_ideal: every (annotation, tuple) relationship, for base
	// publications and workload annotations alike.
	Ideal annotation.IdealEdges
	// Workload is the L^m × L_{i-j} mixture of new annotations.
	Workload []*AnnotationSpec
	// Base describes the base publications (usable as training data).
	Base []*AnnotationSpec

	numCommunities int
	communityGenes [][]int // community -> gene indexes
	communityProts [][]int // community -> protein indexes
}

// AnnotationSpec describes one annotation together with its ground truth.
type AnnotationSpec struct {
	// Ann is the annotation (ID, body text).
	Ann *annotation.Annotation
	// SizeClass is the L^m byte budget (0 for base publications).
	SizeClass int
	// Refs is the L_{i-j} class (zero for base publications).
	Refs RefClass
	// Related lists every tuple the annotation is related to — its ideal
	// attachments. Under distortion Δ, Related[:Δ] acts as the focal and
	// Related[Δ:] are the hidden attachments to rediscover.
	Related []relational.TupleID
	// RefKeywords are the identifier keywords embedded in the body, one
	// per Related tuple, used to judge generated queries (Figure 11c).
	RefKeywords []string
}

// Focal returns the attachments kept after distortion Δ (at least one).
func (s *AnnotationSpec) Focal(delta int) []relational.TupleID {
	if delta < 1 {
		delta = 1
	}
	if delta > len(s.Related) {
		delta = len(s.Related)
	}
	return s.Related[:delta]
}

// Hidden returns the attachments dropped by distortion Δ — the discovery
// targets.
func (s *AnnotationSpec) Hidden(delta int) []relational.TupleID {
	if delta < 1 {
		delta = 1
	}
	if delta > len(s.Related) {
		delta = len(s.Related)
	}
	return s.Related[delta:]
}

// GeneTuple returns the TupleID of the i-th gene.
func GeneTuple(i int) relational.TupleID {
	return relational.TupleID{Table: "Gene", Key: "s:" + strings.ToLower(geneID(i))}
}

// ProteinTuple returns the TupleID of the i-th protein.
func ProteinTuple(i int) relational.TupleID {
	return relational.TupleID{Table: "Protein", Key: "s:" + strings.ToLower(proteinID(i))}
}

// Generate builds the complete dataset deterministically from cfg.Seed.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Genes <= 0 || cfg.Proteins <= 0 || cfg.Publications < 0 {
		return nil, fmt.Errorf("workload: non-positive table sizes in %+v", cfg)
	}
	if cfg.RefsPerPublicationMin < 1 || cfg.RefsPerPublicationMax < cfg.RefsPerPublicationMin {
		return nil, fmt.Errorf("workload: bad refs-per-publication range")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Config: cfg,
		DB:     relational.NewDatabase(),
		Store:  annotation.NewStore(),
		Graph:  acg.New(100, 0.2),
		Ideal:  make(annotation.IdealEdges),
	}
	if err := d.createTables(); err != nil {
		return nil, err
	}
	if err := d.populateRows(rng); err != nil {
		return nil, err
	}
	if err := d.populateMeta(rng); err != nil {
		return nil, err
	}
	if err := d.attachBasePublications(rng); err != nil {
		return nil, err
	}
	if err := d.buildWorkload(rng); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Dataset) createTables() error {
	// Only the primary keys and the FK column are indexed. The name columns
	// deliberately are not: the keyword search technique the paper builds
	// on generates ad-hoc predicates over whatever columns the metadata
	// suggests, and a production database does not keep a secondary index
	// on every such column — those predicates scan. This is what makes
	// searching the entire database "a very expensive operation" (§6.3)
	// relative to searching a focal neighborhood.
	gene := &relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString, Indexed: true},
			{Name: "Name", Type: relational.TypeString},
			{Name: "Length", Type: relational.TypeInt},
			{Name: "Seq", Type: relational.TypeString},
			{Name: "Family", Type: relational.TypeString},
		},
		PrimaryKey: "GID",
	}
	protein := &relational.Schema{
		Name: "Protein",
		Columns: []relational.Column{
			{Name: "PID", Type: relational.TypeString, Indexed: true},
			{Name: "PName", Type: relational.TypeString},
			{Name: "PType", Type: relational.TypeString},
			{Name: "GeneID", Type: relational.TypeString, Indexed: true},
		},
		PrimaryKey:  "PID",
		ForeignKeys: []relational.ForeignKey{{Column: "GeneID", RefTable: "Gene", RefColumn: "GID"}},
	}
	pub := &relational.Schema{
		Name: "Publication",
		Columns: []relational.Column{
			{Name: "PubID", Type: relational.TypeString, Indexed: true},
			{Name: "Title", Type: relational.TypeString, FullText: true},
			{Name: "Abstract", Type: relational.TypeString, FullText: true},
		},
		PrimaryKey: "PubID",
	}
	for _, s := range []*relational.Schema{gene, protein, pub} {
		if _, err := d.DB.CreateTable(s); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	return d.DB.ValidateForeignKeys()
}

// populateRows inserts genes, proteins, and (empty-abstract) publications;
// publication text is filled by attachBasePublications, which decides the
// references. Genes are partitioned into contiguous communities of ~30;
// proteins join the community of their gene. Communities give the ACG the
// locality that makes focal-based spreading meaningful (and that real
// curated databases exhibit: publications cite related objects).
func (d *Dataset) populateRows(rng *rand.Rand) error {
	const communitySize = 30
	d.numCommunities = (d.Config.Genes + communitySize - 1) / communitySize
	d.communityGenes = make([][]int, d.numCommunities)
	d.communityProts = make([][]int, d.numCommunities)

	gt := d.DB.MustTable("Gene")
	for i := 0; i < d.Config.Genes; i++ {
		c := i / communitySize
		family := fmt.Sprintf("F%d", c%d.Config.Families+1)
		if _, err := gt.Insert([]relational.Value{
			relational.String(geneID(i)),
			relational.String(geneName(i)),
			relational.Int(int64(300 + rng.Intn(2200))),
			relational.String(dnaSeq(rng, 16)),
			relational.String(family),
		}); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
		d.communityGenes[c] = append(d.communityGenes[c], i)
	}
	pt := d.DB.MustTable("Protein")
	for i := 0; i < d.Config.Proteins; i++ {
		g := rng.Intn(d.Config.Genes)
		c := g / communitySize
		if _, err := pt.Insert([]relational.Value{
			relational.String(proteinID(i)),
			relational.String(proteinName(i)),
			relational.String(proteinTypes[rng.Intn(len(proteinTypes))]),
			relational.String(geneID(g)),
		}); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
		d.communityProts[c] = append(d.communityProts[c], i)
	}
	return nil
}

// populateMeta fills NebulaMeta the way §8.1 describes: the Gene and
// Protein concepts with their ID and Name referencing columns, regular
// expression patterns over the identifier columns, the PType ontology, and
// expert equivalent names for the abbreviations.
func (d *Dataset) populateMeta(rng *rand.Rand) error {
	repo, err := BuildMeta(d.DB, rng)
	if err != nil {
		return err
	}
	d.Meta = repo
	return nil
}

// BuildMeta registers the §8.1 NebulaMeta configuration against db. The
// repository is configuration, not state, so it is excluded from engine
// snapshots; tools that restore a snapshot of a generated dataset call
// BuildMeta to rebuild the repository for the restored database. rng feeds
// only the PName column sample.
func BuildMeta(db *relational.Database, rng *rand.Rand) (*meta.Repository, error) {
	repo := meta.NewRepository(db, nil)
	for _, c := range []*meta.Concept{
		{Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}}},
		{Name: "Protein", Table: "Protein", ReferencedBy: [][]string{{"PID"}, {"PName", "PType"}}},
	} {
		if err := repo.AddConcept(c); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	}
	repo.AddEquivalentNames("GID", "Gene ID")
	repo.AddEquivalentNames("PID", "Protein ID")
	patterns := map[meta.ColumnRef]string{
		{Table: "Gene", Column: "GID"}:      `JW[0-9]{5}`,
		{Table: "Gene", Column: "Name"}:     `[a-z]{3}[A-Z]`,
		{Table: "Protein", Column: "PID"}:   `P[0-9]{5}`,
		{Table: "Protein", Column: "PName"}: `[A-Z][a-z]{4}in`,
	}
	for col, p := range patterns {
		if err := repo.SetPattern(col, p); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	}
	repo.SetOntology(meta.ColumnRef{Table: "Protein", Column: "PType"}, proteinTypes)
	if err := repo.DrawSample(meta.ColumnRef{Table: "Protein", Column: "PName"}, 100, rng); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return repo, nil
}

// proteinType returns the PType of the i-th protein, or "" when absent.
func (d *Dataset) proteinType(i int) string {
	row, ok := d.DB.Lookup(ProteinTuple(i))
	if !ok {
		return ""
	}
	v, _ := row.Get("PType")
	return v.Str()
}

// pickCommunityTuple samples one gene or protein from a community,
// returning the tuple plus the rendering coordinates.
func (d *Dataset) pickCommunityTuple(rng *rand.Rand, c int) (relational.TupleID, bool, int) {
	genes, prots := d.communityGenes[c], d.communityProts[c]
	if len(prots) > 0 && rng.Float64() < 0.3 {
		p := prots[rng.Intn(len(prots))]
		return ProteinTuple(p), true, p
	}
	g := genes[rng.Intn(len(genes))]
	return GeneTuple(g), false, g
}

// attachBasePublications writes the base publication rows, registers each
// as an annotation attached to its referenced tuples, records the ideal
// edges, and feeds the ACG.
func (d *Dataset) attachBasePublications(rng *rand.Rand) error {
	pubT := d.DB.MustTable("Publication")
	for i := 0; i < d.Config.Publications; i++ {
		c := rng.Intn(d.numCommunities)
		if len(d.communityGenes[c]) == 0 {
			c = 0
		}
		nrefs := d.Config.RefsPerPublicationMin +
			rng.Intn(d.Config.RefsPerPublicationMax-d.Config.RefsPerPublicationMin+1)
		// Base publications are highly local (0.995): a curated repository's
		// ACG keeps community structure. The rare cross-community citation
		// is what bridges communities — too many of them and every K-hop
		// neighborhood degenerates into the whole graph.
		spec := d.composeAnnotation(rng, fmt.Sprintf("pub:%06d", i), c, nrefs, 400, 0.995)
		pubID := fmt.Sprintf("PUB%06d", i)
		title := "On " + fillerSentence(rng, 4)
		if _, err := pubT.Insert([]relational.Value{
			relational.String(pubID),
			relational.String(title),
			relational.String(spec.Ann.Body),
		}); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
		if err := d.Store.Add(spec.Ann); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
		for _, t := range spec.Related {
			if _, err := d.Store.Attach(annotation.Attachment{
				Annotation: spec.Ann.ID, Tuple: t, Type: annotation.TrueAttachment,
			}); err != nil {
				return fmt.Errorf("workload: %w", err)
			}
			d.Ideal[annotation.EdgeKey{Annotation: spec.Ann.ID, Tuple: t}] = struct{}{}
		}
		d.Graph.AddAnnotation(spec.Ann.ID, spec.Related)
		d.Base = append(d.Base, spec)
	}
	return nil
}

// composeAnnotation builds one annotation whose body embeds references to
// nrefs distinct tuples, preferring the given community with probability
// locality and padding with filler prose up to maxBytes.
func (d *Dataset) composeAnnotation(rng *rand.Rand, id string, community, nrefs, maxBytes int, locality float64) *AnnotationSpec {
	spec := &AnnotationSpec{Ann: &annotation.Annotation{ID: annotation.ID(id), Kind: "publication"}}
	seen := make(map[relational.TupleID]struct{})
	type ref struct {
		isProtein bool
		idx       int
		keyword   string
		byName    bool
	}
	var genes, prots []ref
	for len(seen) < nrefs {
		c := community
		if rng.Float64() >= locality {
			c = rng.Intn(d.numCommunities)
		}
		if len(d.communityGenes[c]) == 0 {
			c = community
		}
		t, isProtein, idx := d.pickCommunityTuple(rng, c)
		if _, dup := seen[t]; dup {
			// Dense communities may run out of fresh tuples; fall back to a
			// global pick to guarantee progress.
			if isProtein && d.Config.Proteins > nrefs {
				idx = rng.Intn(d.Config.Proteins)
				t = ProteinTuple(idx)
			} else {
				idx = rng.Intn(d.Config.Genes)
				t, isProtein = GeneTuple(idx), false
			}
			if _, dup := seen[t]; dup {
				continue
			}
		}
		seen[t] = struct{}{}
		byName := rng.Float64() < 0.35
		r := ref{isProtein: isProtein, idx: idx, byName: byName}
		if isProtein {
			prots = append(prots, r)
		} else {
			genes = append(genes, r)
		}
		spec.Related = append(spec.Related, t)
	}

	// Render: gene references grouped after a single "gene" concept word
	// (exercising the backward-search special case of §5.2.3), protein
	// references after "protein". The first reference of each group uses a
	// full template so the Type-1/2 context matching also fires. Rendering
	// is budget-aware: a reference that does not fit in maxBytes is dropped
	// from the text AND from the ground truth, so Related always matches
	// what the body actually embeds.
	var b strings.Builder
	spec.Related = spec.Related[:0]
	writeGroup := func(refs []ref, isProtein bool) {
		concept := conceptWord(rng, isProtein)
		for i, r := range refs {
			var phrase, kw string
			if i == 0 {
				phrase, kw = refPhrase(rng, concept, isProtein, r.byName, r.idx)
				// Some name-based protein references use the {PName, PType}
				// combination of ConceptRefs: "the structural protein
				// Abcdein". The type word maps to PType's ontology and the
				// query generator folds it into a combination query.
				if isProtein && r.byName && rng.Float64() < 0.5 {
					ptype := d.proteinType(r.idx)
					if ptype != "" {
						kw = proteinName(r.idx)
						phrase = "the " + ptype + " " + concept + " " + kw
					}
				}
			} else {
				// Subsequent references rely on the earlier concept word.
				if isProtein {
					if r.byName {
						kw = proteinName(r.idx)
					} else {
						kw = proteinID(r.idx)
					}
				} else {
					if r.byName {
						kw = geneName(r.idx)
					} else {
						kw = geneID(r.idx)
					}
				}
				phrase = "and " + kw
			}
			need := len(phrase)
			if b.Len() > 0 {
				need++
			}
			if b.Len()+need > maxBytes && b.Len() > 0 {
				continue // over budget: drop this reference entirely
			}
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(phrase)
			spec.RefKeywords = append(spec.RefKeywords, kw)
			if isProtein {
				spec.Related = append(spec.Related, ProteinTuple(r.idx))
			} else {
				spec.Related = append(spec.Related, GeneTuple(r.idx))
			}
		}
	}
	writeGroup(genes, false)
	writeGroup(prots, true)

	// Pad with filler prose up to the byte budget, sprinkled with weak
	// noise codes and ghost references (see text.go): the realistic noise
	// that makes loose ε cutoffs generate false-positive queries.
	for b.Len() < maxBytes-12 {
		w := fillerWords[rng.Intn(len(fillerWords))]
		switch roll := rng.Float64(); {
		case roll < ghostRate:
			w = ghostIdentifier(rng, d.Config.Genes, d.Config.Proteins)
		case roll < ghostRate+noiseRate:
			w = noiseCodes[rng.Intn(len(noiseCodes))]
		case roll < ghostRate+noiseRate+mentionRate:
			// A real object, mentioned but not attached (see mentionRate).
			// Half the mentions are community-local: those share base
			// annotations with the focal, so the §6.2 focal adjustment
			// boosts them too and they genuinely overlap with true
			// references in confidence — the band expert verification
			// exists for.
			if rng.Intn(2) == 0 && len(d.communityGenes[community]) > 0 {
				genes := d.communityGenes[community]
				w = geneID(genes[rng.Intn(len(genes))])
			} else if rng.Intn(2) == 0 {
				w = geneID(rng.Intn(d.Config.Genes))
			} else {
				w = proteinID(rng.Intn(d.Config.Proteins))
			}
		}
		if b.Len()+len(w)+1 > maxBytes {
			break
		}
		b.WriteByte(' ')
		b.WriteString(w)
	}
	spec.Ann.Body = b.String()
	// Shuffle Related (and keywords in lockstep) so the Δ-focal is not
	// biased toward genes.
	rng.Shuffle(len(spec.Related), func(i, j int) {
		spec.Related[i], spec.Related[j] = spec.Related[j], spec.Related[i]
		spec.RefKeywords[i], spec.RefKeywords[j] = spec.RefKeywords[j], spec.RefKeywords[i]
	})
	return spec
}
