// Package acg implements the Annotations Connectivity Graph of §6.2
// (Figure 6) and the machinery built on it: edge weights derived from
// shared annotations, the stability criterion of Definition 6.1, the
// hop-distance metadata profile of Figure 7 that guides the selection of
// the spreading radius K, and K-hop neighborhood extraction for the
// focal-based approximate search of §6.3.
package acg

import (
	"sort"
	"sync"

	"nebula/internal/annotation"
	"nebula/internal/relational"
)

// Graph is the ACG: one node per annotated tuple, an edge between two
// tuples iff they share at least one annotation. The edge weight α is the
// ratio between the common annotations and the total annotations attached
// to the two tuples (Jaccard of their annotation sets), recomputed from the
// node sets on demand so it stays exact as annotations accumulate.
//
// Synchronization contract: the engine's sharded lock group is the Graph's
// primary guard. The only mutations reachable while holding a single shard
// lock are AddAnnotation and AddAttachment (the annotation-insert path) —
// those serialize on mu below. Every other method (readers included) is
// called only under contexts holding every shard, which excludes the
// single-shard mutators, so it takes no internal lock.
type Graph struct {
	// mu serializes AddAnnotation/AddAttachment (and their stability
	// observations) against each other across shard-locked callers.
	mu sync.Mutex
	// anns maps each tuple to the set of annotations attached to it.
	anns map[relational.TupleID]map[annotation.ID]struct{}
	// byAnn maps each annotation to the tuples it is attached to.
	byAnn map[annotation.ID][]relational.TupleID
	// adj is the adjacency structure (unweighted; weights on demand). Each
	// node keeps both a membership set (O(1) edge checks) and an append-only
	// neighbor list (cheap iteration for the BFS-heavy spreading search).
	adj map[relational.TupleID]*adjacency

	stability stabilityTracker
}

// New returns an empty ACG with the given stability parameters: batches of
// batchSize annotations are stable when newEdges/attachments < mu
// (Definition 6.1).
func New(batchSize int, mu float64) *Graph {
	return &Graph{
		anns:  make(map[relational.TupleID]map[annotation.ID]struct{}),
		byAnn: make(map[annotation.ID][]relational.TupleID),
		adj:   make(map[relational.TupleID]*adjacency),
		stability: stabilityTracker{
			batchSize: batchSize,
			mu:        mu,
		},
	}
}

// Nodes returns the number of annotated tuples in the graph.
func (g *Graph) Nodes() int { return len(g.anns) }

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	n := 0
	for _, nb := range g.adj {
		n += len(nb.list)
	}
	return n / 2
}

// Contains reports whether the tuple is a node of the graph.
func (g *Graph) Contains(t relational.TupleID) bool {
	_, ok := g.anns[t]
	return ok
}

// AddAnnotation records a (new) annotation together with all of its
// attached tuples, adding the implied edges. It also advances the stability
// tracker: the annotation contributes 1 to the batch, len(tuples) to M, and
// each genuinely new edge to N.
func (g *Graph) AddAnnotation(id annotation.ID, tuples []relational.TupleID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	newEdges := 0
	for _, t := range tuples {
		newEdges += g.attach(id, t)
	}
	g.stability.observe(1, len(tuples), newEdges)
}

// AddAttachment records one additional attachment of an existing (or new)
// annotation — the post-verification update path: accepting a prediction
// adds edges between the tuple and the annotation's focal. The stability
// tracker counts the attachment but not a new annotation.
func (g *Graph) AddAttachment(id annotation.ID, t relational.TupleID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	newEdges := g.attach(id, t)
	g.stability.observe(0, 1, newEdges)
}

// attach wires one (annotation, tuple) pair and returns the number of new
// edges created.
func (g *Graph) attach(id annotation.ID, t relational.TupleID) int {
	set, ok := g.anns[t]
	if !ok {
		set = make(map[annotation.ID]struct{})
		g.anns[t] = set
	}
	if _, dup := set[id]; dup {
		return 0
	}
	set[id] = struct{}{}
	newEdges := 0
	for _, other := range g.byAnn[id] {
		if other == t {
			continue
		}
		if g.addEdge(t, other) {
			newEdges++
		}
	}
	g.byAnn[id] = append(g.byAnn[id], t)
	return newEdges
}

// adjacency is one node's edge structure.
type adjacency struct {
	set  map[relational.TupleID]struct{}
	list []relational.TupleID
}

func (a *adjacency) add(t relational.TupleID) bool {
	if _, dup := a.set[t]; dup {
		return false
	}
	a.set[t] = struct{}{}
	a.list = append(a.list, t)
	return true
}

func (a *adjacency) remove(t relational.TupleID) {
	if _, ok := a.set[t]; !ok {
		return
	}
	delete(a.set, t)
	for i, x := range a.list {
		if x == t {
			a.list = append(a.list[:i:i], a.list[i+1:]...)
			break
		}
	}
}

// addEdge inserts the undirected edge and reports whether it was new.
func (g *Graph) addEdge(a, b relational.TupleID) bool {
	na, ok := g.adj[a]
	if !ok {
		na = &adjacency{set: make(map[relational.TupleID]struct{})}
		g.adj[a] = na
	}
	if !na.add(b) {
		return false
	}
	nb, ok := g.adj[b]
	if !ok {
		nb = &adjacency{set: make(map[relational.TupleID]struct{})}
		g.adj[b] = nb
	}
	nb.add(a)
	return true
}

// Weight returns the edge weight α between two tuples: |common| / |union|
// of their annotation sets, or 0 when no edge exists.
func (g *Graph) Weight(a, b relational.TupleID) float64 {
	na, ok := g.adj[a]
	if !ok {
		return 0
	}
	if _, connected := na.set[b]; !connected {
		return 0
	}
	sa, sb := g.anns[a], g.anns[b]
	common := 0
	for id := range sa {
		if _, ok := sb[id]; ok {
			common++
		}
	}
	union := len(sa) + len(sb) - common
	if union == 0 {
		return 0
	}
	return float64(common) / float64(union)
}

// Neighbors returns the direct neighbors of a tuple, sorted for
// determinism.
func (g *Graph) Neighbors(t relational.TupleID) []relational.TupleID {
	nb, ok := g.adj[t]
	if !ok {
		return nil
	}
	out := make([]relational.TupleID, len(nb.list))
	copy(out, nb.list)
	sortTuples(out)
	return out
}

// AnnotationsOf returns how many annotations are attached to a tuple.
func (g *Graph) AnnotationsOf(t relational.TupleID) int { return len(g.anns[t]) }

// RemoveTuple deletes a tuple's node: its annotation memberships, its
// edges, and its entries in other nodes' adjacency. Called when the data
// tuple is deleted from the database. Stability counters are not rewound —
// the batch history already happened.
func (g *Graph) RemoveTuple(t relational.TupleID) {
	anns, ok := g.anns[t]
	if !ok {
		return
	}
	for id := range anns {
		tuples := g.byAnn[id]
		for i, other := range tuples {
			if other == t {
				g.byAnn[id] = append(tuples[:i:i], tuples[i+1:]...)
				break
			}
		}
		if len(g.byAnn[id]) == 0 {
			delete(g.byAnn, id)
		}
	}
	delete(g.anns, t)
	if adj, ok := g.adj[t]; ok {
		for _, nb := range adj.list {
			g.adj[nb].remove(t)
			if len(g.adj[nb].list) == 0 {
				delete(g.adj, nb)
			}
		}
		delete(g.adj, t)
	}
}

// AttachmentList exports the graph's (annotation → tuples) mapping. Tuple
// order within an annotation follows attachment order; the map is a copy.
// Together with StabilityState this is everything needed to reconstruct
// the graph (see internal/snapshot).
func (g *Graph) AttachmentList() map[annotation.ID][]relational.TupleID {
	out := make(map[annotation.ID][]relational.TupleID, len(g.byAnn))
	for id, tuples := range g.byAnn {
		cp := make([]relational.TupleID, len(tuples))
		copy(cp, tuples)
		out[id] = cp
	}
	return out
}

// StabilityState exports the stability tracker's configuration and
// counters for snapshotting.
func (g *Graph) StabilityState() (batchSize int, mu float64, batchAnnotations, batchAttachments, batchNewEdges, batchesClosed int, stable bool) {
	s := g.stability
	return s.batchSize, s.mu, s.batchAnnotations, s.batchAttachments, s.batchNewEdges, s.batchesClosed, s.stable
}

// RestoreStabilityState reinstates a snapshotted stability tracker.
func (g *Graph) RestoreStabilityState(batchSize int, mu float64, batchAnnotations, batchAttachments, batchNewEdges, batchesClosed int, stable bool) {
	g.stability = stabilityTracker{
		batchSize:        batchSize,
		mu:               mu,
		batchAnnotations: batchAnnotations,
		batchAttachments: batchAttachments,
		batchNewEdges:    batchNewEdges,
		batchesClosed:    batchesClosed,
		stable:           stable,
	}
}

func sortTuples(ts []relational.TupleID) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Table != ts[j].Table {
			return ts[i].Table < ts[j].Table
		}
		return ts[i].Key < ts[j].Key
	})
}
