package acg

import (
	"fmt"
	"math/rand"
	"testing"

	"nebula/internal/annotation"
	"nebula/internal/relational"
)

// TestGraphRandomInvariants grows a graph with random annotations and
// attachments and checks the structural invariants after each step:
//
//  1. Weight(a,b) > 0 iff a and b share at least one annotation.
//  2. Weight is symmetric and within (0, 1].
//  3. Neighbors lists exactly the positive-weight partners.
//  4. Every tuple of every annotation is a node.
func TestGraphRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := New(0, 0)
	tup := func(i int) relational.TupleID {
		return relational.TupleID{Table: "T", Key: fmt.Sprintf("s:%d", i)}
	}
	const nTup = 12
	attached := map[annotation.ID]map[relational.TupleID]struct{}{}

	for step := 0; step < 400; step++ {
		if step%3 == 0 {
			id := annotation.ID(fmt.Sprintf("a%d", step))
			n := 1 + rng.Intn(4)
			var tuples []relational.TupleID
			set := map[relational.TupleID]struct{}{}
			for len(set) < n {
				tu := tup(rng.Intn(nTup))
				if _, dup := set[tu]; !dup {
					set[tu] = struct{}{}
					tuples = append(tuples, tu)
				}
			}
			g.AddAnnotation(id, tuples)
			attached[id] = set
		} else {
			// Attach to an existing annotation.
			var ids []annotation.ID
			for id := range attached {
				ids = append(ids, id)
			}
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			tu := tup(rng.Intn(nTup))
			g.AddAttachment(id, tu)
			attached[id][tu] = struct{}{}
		}
		if step%20 == 0 {
			checkGraphInvariants(t, g, attached, nTup, step)
		}
	}
	checkGraphInvariants(t, g, attached, nTup, 400)
}

func checkGraphInvariants(t *testing.T, g *Graph, attached map[annotation.ID]map[relational.TupleID]struct{}, nTup, step int) {
	t.Helper()
	tup := func(i int) relational.TupleID {
		return relational.TupleID{Table: "T", Key: fmt.Sprintf("s:%d", i)}
	}
	shares := func(a, b relational.TupleID) bool {
		for _, set := range attached {
			_, hasA := set[a]
			_, hasB := set[b]
			if hasA && hasB {
				return true
			}
		}
		return false
	}
	for i := 0; i < nTup; i++ {
		for j := 0; j < nTup; j++ {
			if i == j {
				continue
			}
			a, b := tup(i), tup(j)
			w := g.Weight(a, b)
			if w != g.Weight(b, a) {
				t.Fatalf("step %d: asymmetric weight", step)
			}
			if shares(a, b) {
				if w <= 0 || w > 1 {
					t.Fatalf("step %d: sharing tuples %v,%v have weight %f", step, a, b, w)
				}
			} else if w != 0 {
				t.Fatalf("step %d: non-sharing tuples %v,%v have weight %f", step, a, b, w)
			}
		}
		// Neighbors are exactly the positive-weight partners.
		nb := g.Neighbors(tup(i))
		seen := map[relational.TupleID]bool{}
		for _, n := range nb {
			seen[n] = true
			if g.Weight(tup(i), n) <= 0 {
				t.Fatalf("step %d: neighbor with zero weight", step)
			}
		}
		for j := 0; j < nTup; j++ {
			if j != i && g.Weight(tup(i), tup(j)) > 0 && !seen[tup(j)] {
				t.Fatalf("step %d: positive-weight partner missing from Neighbors", step)
			}
		}
	}
	// Every attached tuple is a node.
	for id, set := range attached {
		for tu := range set {
			if !g.Contains(tu) {
				t.Fatalf("step %d: tuple %v of %s not a node", step, tu, id)
			}
		}
	}
}

// TestNeighborhoodSubsetProperty: Neighborhood(f, k) ⊆ Neighborhood(f, k+1),
// and every member's HopsToAny distance is ≤ k.
func TestNeighborhoodSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New(0, 0)
	tup := func(i int) relational.TupleID {
		return relational.TupleID{Table: "T", Key: fmt.Sprintf("s:%d", i)}
	}
	for i := 0; i < 60; i++ {
		g.AddAnnotation(annotation.ID(fmt.Sprintf("a%d", i)),
			[]relational.TupleID{tup(rng.Intn(30)), tup(rng.Intn(30))})
	}
	focal := []relational.TupleID{tup(0), tup(17)}
	prev := map[relational.TupleID]bool{}
	for k := 0; k <= 5; k++ {
		cur := g.Neighborhood(focal, k)
		curSet := map[relational.TupleID]bool{}
		for _, tu := range cur {
			curSet[tu] = true
			if d, ok := g.HopsToAny(tu, focal); !ok || d > k {
				t.Fatalf("K=%d contains tuple at distance %d (ok=%v)", k, d, ok)
			}
		}
		for tu := range prev {
			if !curSet[tu] {
				t.Fatalf("K=%d lost tuple %v from K-1", k, tu)
			}
		}
		prev = curSet
	}
}
