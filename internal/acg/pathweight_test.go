package acg

import (
	"fmt"
	"math"
	"testing"

	"nebula/internal/annotation"
	"nebula/internal/relational"
)

// weightedChain builds 1-2-3-4 where consecutive tuples share varying
// numbers of annotations to create distinct edge weights.
func weightedChain() *Graph {
	g := New(0, 0)
	// 1-2 share two annotations; each also has a private one to dilute.
	g.AddAnnotation("a1", []relational.TupleID{tid(1), tid(2)})
	g.AddAnnotation("a2", []relational.TupleID{tid(1), tid(2)})
	// 2-3 share one.
	g.AddAnnotation("b1", []relational.TupleID{tid(2), tid(3)})
	// 3-4 share one.
	g.AddAnnotation("c1", []relational.TupleID{tid(3), tid(4)})
	return g
}

func TestPathWeightsDirect(t *testing.T) {
	g := weightedChain()
	w := g.PathWeights(tid(1), 1)
	if len(w) != 1 {
		t.Fatalf("1-hop weights = %v", w)
	}
	// weight(1,2) = |{a1,a2}| / |{a1,a2,b1}| = 2/3.
	if got := w[tid(2)]; math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("w(2) = %f", got)
	}
}

func TestPathWeightsMultiHop(t *testing.T) {
	g := weightedChain()
	w := g.PathWeights(tid(1), 3)
	if len(w) != 3 {
		t.Fatalf("3-hop weights = %v", w)
	}
	w12 := g.Weight(tid(1), tid(2))
	w23 := g.Weight(tid(2), tid(3))
	w34 := g.Weight(tid(3), tid(4))
	if got := w[tid(3)]; math.Abs(got-w12*w23) > 1e-9 {
		t.Errorf("w(3) = %f, want %f", got, w12*w23)
	}
	if got := w[tid(4)]; math.Abs(got-w12*w23*w34) > 1e-9 {
		t.Errorf("w(4) = %f, want %f", got, w12*w23*w34)
	}
	// Bounded horizon: 2 hops excludes tuple 4.
	w2 := g.PathWeights(tid(1), 2)
	if _, ok := w2[tid(4)]; ok {
		t.Error("maxHops not respected")
	}
}

func TestPathWeightsPicksStrongestShortestPath(t *testing.T) {
	g := New(0, 0)
	// Two 2-hop paths from 1 to 4: via 2 (strong) and via 3 (weak).
	g.AddAnnotation("s1", []relational.TupleID{tid(1), tid(2)})
	g.AddAnnotation("s2", []relational.TupleID{tid(1), tid(2)})
	g.AddAnnotation("s3", []relational.TupleID{tid(2), tid(4)})
	g.AddAnnotation("s4", []relational.TupleID{tid(2), tid(4)})
	g.AddAnnotation("w1", []relational.TupleID{tid(1), tid(3)})
	g.AddAnnotation("w2", []relational.TupleID{tid(3), tid(4)})
	// Dilute the weak path's edges.
	g.AddAnnotation("d1", []relational.TupleID{tid(3), tid(9)})
	g.AddAnnotation("d2", []relational.TupleID{tid(3), tid(8)})

	strong := g.Weight(tid(1), tid(2)) * g.Weight(tid(2), tid(4))
	weak := g.Weight(tid(1), tid(3)) * g.Weight(tid(3), tid(4))
	if strong <= weak {
		t.Fatalf("fixture broken: strong %f <= weak %f", strong, weak)
	}
	w := g.PathWeights(tid(1), 2)
	if got := w[tid(4)]; math.Abs(got-strong) > 1e-9 {
		t.Errorf("w(4) = %f, want strongest path %f", got, strong)
	}
}

func TestPathWeightsEdgeCases(t *testing.T) {
	g := weightedChain()
	if w := g.PathWeights(tid(1), 0); w != nil {
		t.Error("maxHops 0 should return nil")
	}
	if w := g.PathWeights(tid(99), 2); w != nil {
		t.Error("unknown source should return nil")
	}
	// Source never appears in its own result.
	w := g.PathWeights(tid(2), 3)
	if _, ok := w[tid(2)]; ok {
		t.Error("source in result")
	}
}

func TestPathWeightsConsistentWithDirectWeight(t *testing.T) {
	// Property: for every edge (s, n), PathWeights(s, 1)[n] == Weight(s, n).
	g := New(0, 0)
	for i := 0; i < 12; i++ {
		g.AddAnnotation(annotation.ID(fmt.Sprintf("x%d", i)),
			[]relational.TupleID{tid(i % 5), tid((i*2 + 1) % 7)})
	}
	for i := 0; i < 7; i++ {
		s := tid(i)
		w := g.PathWeights(s, 1)
		for _, n := range g.Neighbors(s) {
			if math.Abs(w[n]-g.Weight(s, n)) > 1e-9 {
				t.Errorf("PathWeights(%v,1)[%v] = %f != Weight %f", s, n, w[n], g.Weight(s, n))
			}
		}
	}
}
