package acg

import "nebula/internal/relational"

// Neighborhood returns the tuples within k hops of any of the given focal
// tuples (the focal tuples themselves included, at distance 0), via
// breadth-first traversal of the unweighted ACG. The result is sorted for
// determinism. This is the tuple set the focal-spreading search
// materializes into a miniDB (§6.3, Fixed-Scope variant).
func (g *Graph) Neighborhood(focal []relational.TupleID, k int) []relational.TupleID {
	dist := g.bfs(focal, k)
	out := make([]relational.TupleID, 0, len(dist))
	for t := range dist {
		out = append(out, t)
	}
	sortTuples(out)
	return out
}

// HopsToAny returns the length of the shortest (unweighted) path from t to
// any of the focal tuples, and whether t is reachable. A focal tuple is at
// distance 0. This is the S.length computation of the Figure 7 profile
// update.
func (g *Graph) HopsToAny(t relational.TupleID, focal []relational.TupleID) (int, bool) {
	// BFS from the focal side: with multiple sources this is one traversal
	// instead of one per focal tuple.
	for _, f := range focal {
		if f == t {
			return 0, true
		}
	}
	dist := g.bfs(focal, -1)
	d, ok := dist[t]
	return d, ok
}

// bfs runs a multi-source BFS up to maxDepth hops (maxDepth < 0 means
// unbounded) and returns the distance map. Sources missing from the graph
// are still reported at distance 0 but have no neighbors.
func (g *Graph) bfs(sources []relational.TupleID, maxDepth int) map[relational.TupleID]int {
	dist := make(map[relational.TupleID]int, len(sources))
	queue := make([]relational.TupleID, 0, len(sources))
	for _, s := range sources {
		if _, dup := dist[s]; dup {
			continue
		}
		dist[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := dist[cur]
		if maxDepth >= 0 && d == maxDepth {
			continue
		}
		adj, ok := g.adj[cur]
		if !ok {
			continue
		}
		for _, nb := range adj.list {
			if _, seen := dist[nb]; seen {
				continue
			}
			dist[nb] = d + 1
			queue = append(queue, nb)
		}
	}
	return dist
}
