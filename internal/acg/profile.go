package acg

// Profile is the metadata profile of Figure 7: a histogram over hop
// distances recording, for each accepted prediction, how many hops away
// from the annotation's focal the discovered tuple was. The accumulated
// distribution guides the selection of the spreading radius K — either
// manually by DB admins or automatically given a desired coverage.
type Profile struct {
	// buckets[h] counts predictions discovered h hops from the focal.
	buckets []int
	// unreachable counts predictions with no ACG path to the focal — these
	// can never be discovered by focal spreading, whatever K is.
	unreachable int
	total       int
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{} }

// Record adds one observation: the hop distance of a discovered tuple from
// the annotation's focal, or reachable=false when no path exists.
func (p *Profile) Record(hops int, reachable bool) {
	p.total++
	if !reachable {
		p.unreachable++
		return
	}
	if hops < 0 {
		hops = 0
	}
	for len(p.buckets) <= hops {
		p.buckets = append(p.buckets, 0)
	}
	p.buckets[hops]++
}

// Counts exports the profile's raw counters for snapshotting: a copy of
// the per-hop buckets and the unreachable count.
func (p *Profile) Counts() (buckets []int, unreachable int) {
	buckets = make([]int, len(p.buckets))
	copy(buckets, p.buckets)
	return buckets, p.unreachable
}

// RestoreCounts reinstates snapshotted counters, replacing the profile's
// current content.
func (p *Profile) RestoreCounts(buckets []int, unreachable int) {
	p.buckets = make([]int, len(buckets))
	copy(p.buckets, buckets)
	p.unreachable = unreachable
	p.total = unreachable
	for _, c := range buckets {
		p.total += c
	}
}

// Total returns the number of recorded observations.
func (p *Profile) Total() int { return p.total }

// Unreachable returns the number of unreachable observations.
func (p *Profile) Unreachable() int { return p.unreachable }

// Bucket returns the count at hop distance h.
func (p *Profile) Bucket(h int) int {
	if h < 0 || h >= len(p.buckets) {
		return 0
	}
	return p.buckets[h]
}

// MaxHops returns the largest hop distance observed.
func (p *Profile) MaxHops() int { return len(p.buckets) - 1 }

// CoverageAt returns the fraction of all observations (including
// unreachable ones) at hop distance ≤ k: the "by setting K = 2 we expect to
// discover 71% of the candidates" computation of Figure 7.
func (p *Profile) CoverageAt(k int) float64 {
	if p.total == 0 {
		return 0
	}
	covered := 0
	for h := 0; h <= k && h < len(p.buckets); h++ {
		covered += p.buckets[h]
	}
	return float64(covered) / float64(p.total)
}

// SelectK returns the smallest K whose expected coverage reaches the
// desired fraction. When even the full reachable mass cannot reach the
// target (because of unreachable observations), it returns the largest
// observed hop distance, the best any K can do. An empty profile returns
// fallback.
func (p *Profile) SelectK(desired float64, fallback int) int {
	if p.total == 0 {
		return fallback
	}
	for k := 0; k < len(p.buckets); k++ {
		if p.CoverageAt(k) >= desired {
			return k
		}
	}
	if len(p.buckets) == 0 {
		return fallback
	}
	return len(p.buckets) - 1
}
