package acg

import (
	"fmt"
	"testing"
	"testing/quick"

	"nebula/internal/annotation"
	"nebula/internal/relational"
)

func tid(n int) relational.TupleID {
	return relational.TupleID{Table: "Gene", Key: fmt.Sprintf("s:jw%04d", n)}
}

func TestAddAnnotationBuildsEdges(t *testing.T) {
	g := New(0, 0)
	g.AddAnnotation("a1", []relational.TupleID{tid(1), tid(2), tid(3)})
	if g.Nodes() != 3 {
		t.Fatalf("nodes = %d", g.Nodes())
	}
	if g.Edges() != 3 { // triangle
		t.Fatalf("edges = %d", g.Edges())
	}
	if !g.Contains(tid(1)) || g.Contains(tid(9)) {
		t.Error("Contains wrong")
	}
	// Each pair shares exactly annotation a1 and each node has 1
	// annotation: weight = 1/1 = 1.
	if w := g.Weight(tid(1), tid(2)); w != 1 {
		t.Errorf("weight = %f", w)
	}
}

func TestWeightJaccard(t *testing.T) {
	g := New(0, 0)
	g.AddAnnotation("a1", []relational.TupleID{tid(1), tid(2)})
	g.AddAnnotation("a2", []relational.TupleID{tid(1), tid(2)})
	g.AddAnnotation("a3", []relational.TupleID{tid(1), tid(3)})
	// t1 has {a1,a2,a3}; t2 has {a1,a2}; common {a1,a2}; union 3.
	if w := g.Weight(tid(1), tid(2)); w != 2.0/3.0 {
		t.Errorf("weight(1,2) = %f", w)
	}
	// t1-t3 share a3 only: common 1, union 3.
	if w := g.Weight(tid(1), tid(3)); w != 1.0/3.0 {
		t.Errorf("weight(1,3) = %f", w)
	}
	// No edge between 2 and 3.
	if w := g.Weight(tid(2), tid(3)); w != 0 {
		t.Errorf("weight(2,3) = %f", w)
	}
	if w := g.Weight(tid(9), tid(1)); w != 0 {
		t.Errorf("weight(missing) = %f", w)
	}
}

func TestWeightSymmetricProperty(t *testing.T) {
	g := New(0, 0)
	for i := 0; i < 10; i++ {
		g.AddAnnotation(annotation.ID(fmt.Sprintf("a%d", i)),
			[]relational.TupleID{tid(i % 5), tid((i + 1) % 5), tid((i * 3) % 5)})
	}
	f := func(a, b uint8) bool {
		x, y := tid(int(a)%5), tid(int(b)%5)
		return g.Weight(x, y) == g.Weight(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateAttachmentIdempotent(t *testing.T) {
	g := New(0, 0)
	g.AddAnnotation("a1", []relational.TupleID{tid(1), tid(2)})
	edges := g.Edges()
	g.AddAttachment("a1", tid(2)) // duplicate
	if g.Edges() != edges {
		t.Error("duplicate attachment created edges")
	}
	if g.AnnotationsOf(tid(2)) != 1 {
		t.Errorf("annotations of t2 = %d", g.AnnotationsOf(tid(2)))
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(0, 0)
	g.AddAnnotation("a1", []relational.TupleID{tid(5), tid(3), tid(8)})
	nb := g.Neighbors(tid(5))
	if len(nb) != 2 || nb[0] != tid(3) || nb[1] != tid(8) {
		t.Errorf("neighbors = %v", nb)
	}
	if g.Neighbors(tid(99)) != nil {
		t.Error("missing node should have nil neighbors")
	}
}

// chain builds t1-t2-t3-...-tn as a path.
func chain(n int) *Graph {
	g := New(0, 0)
	for i := 1; i < n; i++ {
		g.AddAnnotation(annotation.ID(fmt.Sprintf("link%d", i)),
			[]relational.TupleID{tid(i), tid(i + 1)})
	}
	return g
}

func TestNeighborhoodBFS(t *testing.T) {
	g := chain(6) // 1-2-3-4-5-6
	nb := g.Neighborhood([]relational.TupleID{tid(1)}, 2)
	if len(nb) != 3 { // 1,2,3
		t.Fatalf("1-hop radius 2 = %v", nb)
	}
	nb = g.Neighborhood([]relational.TupleID{tid(1), tid(6)}, 1)
	if len(nb) != 4 { // 1,2,5,6
		t.Fatalf("multi-source = %v", nb)
	}
	nb = g.Neighborhood([]relational.TupleID{tid(3)}, 0)
	if len(nb) != 1 || nb[0] != tid(3) {
		t.Fatalf("radius 0 = %v", nb)
	}
}

func TestHopsToAny(t *testing.T) {
	g := chain(6)
	d, ok := g.HopsToAny(tid(4), []relational.TupleID{tid(1)})
	if !ok || d != 3 {
		t.Errorf("hops = %d ok=%v", d, ok)
	}
	d, ok = g.HopsToAny(tid(4), []relational.TupleID{tid(1), tid(5)})
	if !ok || d != 1 {
		t.Errorf("multi-focal hops = %d ok=%v", d, ok)
	}
	if d, ok = g.HopsToAny(tid(1), []relational.TupleID{tid(1)}); !ok || d != 0 {
		t.Errorf("self hops = %d ok=%v", d, ok)
	}
	// Disconnected target.
	g.AddAnnotation("island", []relational.TupleID{tid(100), tid(101)})
	if _, ok = g.HopsToAny(tid(100), []relational.TupleID{tid(1)}); ok {
		t.Error("disconnected tuple reported reachable")
	}
}

func TestStability(t *testing.T) {
	// Batch of 2 annotations, μ = 0.5.
	g := New(2, 0.5)
	if g.Stable() {
		t.Error("empty graph should be unstable (no batch closed)")
	}
	// Batch 1: every attachment creates new edges → unstable.
	g.AddAnnotation("a1", []relational.TupleID{tid(1), tid(2)})
	g.AddAnnotation("a2", []relational.TupleID{tid(3), tid(4)})
	if g.BatchesClosed() != 1 {
		t.Fatalf("batches = %d", g.BatchesClosed())
	}
	if g.Stable() {
		t.Error("edge-heavy batch should be unstable")
	}
	// Batch 2: annotations over already-connected tuples → no new edges →
	// stable.
	g.AddAnnotation("a3", []relational.TupleID{tid(1), tid(2)})
	g.AddAnnotation("a4", []relational.TupleID{tid(3), tid(4)})
	if g.BatchesClosed() != 2 {
		t.Fatalf("batches = %d", g.BatchesClosed())
	}
	if !g.Stable() {
		t.Error("no-new-edge batch should be stable")
	}
	// Batch 3: new edges again → unstable again (the flag changes from one
	// batch to another).
	g.AddAnnotation("a5", []relational.TupleID{tid(10), tid(11)})
	g.AddAnnotation("a6", []relational.TupleID{tid(12), tid(13)})
	if g.Stable() {
		t.Error("stability flag should flip back")
	}
}

func TestStabilityDisabled(t *testing.T) {
	g := New(0, 0.5)
	g.AddAnnotation("a1", []relational.TupleID{tid(1), tid(2)})
	if g.Stable() || g.BatchesClosed() != 0 {
		t.Error("stability tracking should be disabled with batchSize 0")
	}
	g.SetStabilityParams(1, 0.5)
	g.AddAnnotation("a2", []relational.TupleID{tid(1), tid(2)})
	if g.BatchesClosed() != 1 {
		t.Error("reconfigured tracker did not run")
	}
	if !g.Stable() {
		t.Error("duplicate-edge batch should be stable")
	}
}

func TestProfile(t *testing.T) {
	p := NewProfile()
	if p.SelectK(0.9, 3) != 3 {
		t.Error("empty profile should return fallback")
	}
	// Reproduce Figure 7's shape: 71% within 2 hops, 93% within 3.
	for i := 0; i < 30; i++ {
		p.Record(1, true)
	}
	for i := 0; i < 41; i++ {
		p.Record(2, true)
	}
	for i := 0; i < 22; i++ {
		p.Record(3, true)
	}
	for i := 0; i < 7; i++ {
		p.Record(4, true)
	}
	if p.Total() != 100 {
		t.Fatalf("total = %d", p.Total())
	}
	if c := p.CoverageAt(2); c != 0.71 {
		t.Errorf("coverage@2 = %f", c)
	}
	if c := p.CoverageAt(3); c != 0.93 {
		t.Errorf("coverage@3 = %f", c)
	}
	if k := p.SelectK(0.71, 0); k != 2 {
		t.Errorf("SelectK(0.71) = %d", k)
	}
	if k := p.SelectK(0.9, 0); k != 3 {
		t.Errorf("SelectK(0.9) = %d", k)
	}
	if k := p.SelectK(1.0, 0); k != 4 {
		t.Errorf("SelectK(1.0) = %d", k)
	}
	if p.MaxHops() != 4 {
		t.Errorf("MaxHops = %d", p.MaxHops())
	}
	if p.Bucket(2) != 41 || p.Bucket(99) != 0 {
		t.Error("Bucket wrong")
	}
}

func TestProfileUnreachable(t *testing.T) {
	p := NewProfile()
	p.Record(1, true)
	p.Record(0, false)
	if p.Unreachable() != 1 || p.Total() != 2 {
		t.Errorf("unreachable=%d total=%d", p.Unreachable(), p.Total())
	}
	// Coverage counts unreachable in the denominator.
	if c := p.CoverageAt(10); c != 0.5 {
		t.Errorf("coverage = %f", c)
	}
	// Unreachable mass prevents hitting 0.9: SelectK returns max observed.
	if k := p.SelectK(0.9, 7); k != 1 {
		t.Errorf("SelectK with unreachable = %d", k)
	}
	// Negative hop clamps to 0.
	p.Record(-5, true)
	if p.Bucket(0) != 1 {
		t.Error("negative hops not clamped")
	}
}

func TestProfileCoverageMonotoneProperty(t *testing.T) {
	p := NewProfile()
	for i := 0; i < 50; i++ {
		p.Record(i%6, i%7 != 0)
	}
	f := func(a, b uint8) bool {
		x, y := int(a%10), int(b%10)
		if x > y {
			x, y = y, x
		}
		return p.CoverageAt(x) <= p.CoverageAt(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveTuple(t *testing.T) {
	g := New(0, 0)
	g.AddAnnotation("a1", []relational.TupleID{tid(1), tid(2), tid(3)})
	g.AddAnnotation("a2", []relational.TupleID{tid(2), tid(4)})
	g.RemoveTuple(tid(2))
	if g.Contains(tid(2)) {
		t.Fatal("tuple still present")
	}
	if w := g.Weight(tid(1), tid(2)); w != 0 {
		t.Errorf("weight to removed tuple = %f", w)
	}
	// Other structure intact: 1-3 still share a1.
	if w := g.Weight(tid(1), tid(3)); w == 0 {
		t.Error("unrelated edge lost")
	}
	for _, n := range g.Neighbors(tid(1)) {
		if n == tid(2) {
			t.Error("removed tuple still a neighbor")
		}
	}
	// byAnn rewired: a2 now only has tid(4); re-attaching a2 to a new
	// tuple must not resurrect edges to tid(2).
	g.AddAttachment("a2", tid(5))
	if g.Weight(tid(5), tid(2)) != 0 {
		t.Error("edge to removed tuple resurrected")
	}
	if g.Weight(tid(5), tid(4)) == 0 {
		t.Error("new attachment edge missing")
	}
	// Removing a missing tuple is a no-op.
	g.RemoveTuple(tid(99))
}
