package acg

import "nebula/internal/relational"

// PathWeights computes, for every tuple within maxHops of the source, the
// strongest shortest-path weight: among the unweighted-shortest paths from
// source to the tuple, the maximum product of the edge weights along the
// path. This implements the §6.2 extension of the focal-based confidence
// adjustment ("take into account the shortest path — in terms of the number
// of hops — between t and each focal tuple instead of only the direct
// edges ... by multiplying the weights of the in-between edges").
//
// The source itself is excluded from the result. maxHops < 1 returns nil.
func (g *Graph) PathWeights(source relational.TupleID, maxHops int) map[relational.TupleID]float64 {
	if maxHops < 1 {
		return nil
	}
	if _, ok := g.adj[source]; !ok {
		return nil
	}
	dist := map[relational.TupleID]int{source: 0}
	best := map[relational.TupleID]float64{source: 1}
	frontier := []relational.TupleID{source}
	for depth := 1; depth <= maxHops && len(frontier) > 0; depth++ {
		// Two passes per layer: first discover the layer's members, then
		// maximize products over ALL same-shortest-length predecessors (a
		// node can be reached from several previous-layer nodes).
		var next []relational.TupleID
		for _, cur := range frontier {
			adj, ok := g.adj[cur]
			if !ok {
				continue
			}
			for _, nb := range adj.list {
				if _, seen := dist[nb]; !seen {
					dist[nb] = depth
					next = append(next, nb)
				}
			}
		}
		for _, nb := range next {
			maxProd := 0.0
			nbAdj := g.adj[nb]
			for _, pred := range nbAdj.list {
				if dist[pred] != depth-1 {
					continue
				}
				if p := best[pred] * g.Weight(pred, nb); p > maxProd {
					maxProd = p
				}
			}
			best[nb] = maxProd
		}
		frontier = next
	}
	delete(best, source)
	delete(dist, source)
	out := make(map[relational.TupleID]float64, len(best))
	for t, w := range best {
		out[t] = w
	}
	return out
}
