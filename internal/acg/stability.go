package acg

// stabilityTracker implements Definition 6.1 over non-overlapping batches:
// "the ACG structure is stable iff for the most recent batch of annotations
// of size B with total number of attachments M, the number of newly added
// edges is N, where N/M < μ". The stability flag is recomputed when the
// current batch collects B annotations, then the counters reset.
type stabilityTracker struct {
	batchSize int
	mu        float64

	batchAnnotations int
	batchAttachments int
	batchNewEdges    int

	stable        bool
	batchesClosed int
}

// observe accounts newly observed work against the current batch.
func (s *stabilityTracker) observe(annotations, attachments, newEdges int) {
	if s.batchSize <= 0 {
		return // stability tracking disabled
	}
	s.batchAnnotations += annotations
	s.batchAttachments += attachments
	s.batchNewEdges += newEdges
	for s.batchAnnotations >= s.batchSize {
		s.close()
	}
}

// close finalizes the current batch and resets counters.
func (s *stabilityTracker) close() {
	if s.batchAttachments > 0 {
		ratio := float64(s.batchNewEdges) / float64(s.batchAttachments)
		s.stable = ratio < s.mu
	} else {
		// A batch without attachments adds nothing: trivially stable.
		s.stable = true
	}
	s.batchesClosed++
	s.batchAnnotations -= s.batchSize
	if s.batchAnnotations < 0 {
		s.batchAnnotations = 0
	}
	s.batchAttachments = 0
	s.batchNewEdges = 0
}

// Stable reports the ACG stability property — a Boolean that changes from
// one batch to another (§6.3). A graph that has not completed any batch yet
// is unstable.
func (g *Graph) Stable() bool { return g.stability.stable }

// BatchesClosed reports how many stability batches have completed.
func (g *Graph) BatchesClosed() int { return g.stability.batchesClosed }

// SetStabilityParams reconfigures the batch size B and threshold μ. The
// current batch's counters are preserved.
func (g *Graph) SetStabilityParams(batchSize int, mu float64) {
	g.stability.batchSize = batchSize
	g.stability.mu = mu
}
