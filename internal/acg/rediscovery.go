package acg

import (
	"sort"

	"nebula/internal/annotation"
	"nebula/internal/relational"
)

// This file holds the graph surface of change-driven re-discovery: the
// retraction primitive that unwires one (annotation, tuple) pair, and the
// change-data-capture query that maps mutated rows to the annotations whose
// discovered attachments those mutations can affect.

// RemoveAttachment unwires one (annotation, tuple) pair — the retraction
// half of re-discovery, the inverse of AddAttachment. An edge between the
// tuple and another node survives only while the two still share at least
// one annotation; edges that lose their last shared annotation are removed,
// and nodes left without memberships disappear. Stability counters are not
// rewound (the batch history already happened). It reports whether the pair
// was present.
func (g *Graph) RemoveAttachment(id annotation.ID, t relational.TupleID) bool {
	set, ok := g.anns[t]
	if !ok {
		return false
	}
	if _, has := set[id]; !has {
		return false
	}
	delete(set, id)
	tuples := g.byAnn[id]
	for i, other := range tuples {
		if other == t {
			g.byAnn[id] = append(tuples[:i:i], tuples[i+1:]...)
			break
		}
	}
	if len(g.byAnn[id]) == 0 {
		delete(g.byAnn, id)
	}
	if adj, ok := g.adj[t]; ok {
		for _, nb := range append([]relational.TupleID(nil), adj.list...) {
			if g.shareAnnotation(t, nb) {
				continue
			}
			adj.remove(nb)
			if onb, ok := g.adj[nb]; ok {
				onb.remove(t)
				if len(onb.list) == 0 {
					delete(g.adj, nb)
				}
			}
		}
		if len(adj.list) == 0 {
			delete(g.adj, t)
		}
	}
	if len(set) == 0 {
		delete(g.anns, t)
	}
	return true
}

func (g *Graph) shareAnnotation(a, b relational.TupleID) bool {
	sa, sb := g.anns[a], g.anns[b]
	if len(sb) < len(sa) {
		sa, sb = sb, sa
	}
	for id := range sa {
		if _, ok := sb[id]; ok {
			return true
		}
	}
	return false
}

// AffectedAnnotations is the change-data-capture query: the annotations
// attached to any tuple within k hops of the seed tuples (the mutated rows
// and, for inserts, their FK-related rows). These are exactly the prior
// attachments whose discovery evidence the mutation can influence through
// the graph — the set re-queued for re-discovery. Seeds outside the graph
// contribute nothing beyond themselves. Sorted for determinism.
func (g *Graph) AffectedAnnotations(seeds []relational.TupleID, k int) []annotation.ID {
	set := make(map[annotation.ID]struct{})
	for t := range g.bfs(seeds, k) {
		for id := range g.anns[t] {
			set[id] = struct{}{}
		}
	}
	out := make([]annotation.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
