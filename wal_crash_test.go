package nebula_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"nebula"
	"nebula/internal/faultinject"
	"nebula/internal/wal"
	"nebula/internal/workload"
)

// These tests are the crash-fault harness for the WAL: they run a
// deterministic mutation script against a live engine, then simulate
// crashes by truncating or corrupting the log at every interesting byte
// and assert that recovery (baseline snapshot + replay) reconstructs
// EXACTLY the state covered by the durable prefix — corrupt tails
// detected and discarded, never misapplied, and never losing an
// acknowledged record.

const crashSeed = 11

// crashFixture builds the deterministic dataset, an engine over it, and
// the baseline snapshot every recovery layers replay onto. The snapshot
// is taken BEFORE the WAL attaches: the log records mutations since
// attach, so recovery needs the pre-attach state as its floor.
func crashFixture(t testing.TB) (*nebula.Engine, *workload.Dataset, []byte) {
	t.Helper()
	ds, err := workload.Generate(workload.TinyConfig(crashSeed))
	if err != nil {
		t.Fatal(err)
	}
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var baseline bytes.Buffer
	if err := e.SaveSnapshot(&baseline); err != nil {
		t.Fatal(err)
	}
	return e, ds, baseline.Bytes()
}

// configureWorkloadMeta rebuilds the NebulaMeta repository for a restored
// workload database (meta is configuration, not snapshot state). The rng
// only feeds a column sample; replay determinism does not depend on it.
func configureWorkloadMeta(db *nebula.Database) (*nebula.MetaRepository, error) {
	return workload.BuildMeta(db, rand.New(rand.NewSource(crashSeed)))
}

// scriptStep is one engine mutation in the deterministic crash script.
type scriptStep struct {
	name string
	run  func() error
}

// crashScript returns the mutation sequence the harness drives: it
// covers every WAL op — bounds changes, annotation add, discovery
// submission, raw row insert/update/delete, expert verdicts both ways,
// oracle resolution, and tuple deletion. Steps are closures so later
// steps can read state (pending VIDs) produced by earlier ones.
func crashScript(e *nebula.Engine, ds *workload.Dataset) []scriptStep {
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})
	spec0, spec1 := specs[0], specs[1]
	return []scriptStep{
		// Wide uncertain region so discovery parks candidates as pending
		// tasks for the verdict steps below.
		{"set-bounds-wide", func() error {
			return e.SetBounds(nebula.Bounds{Lower: 0.05, Upper: 0.95})
		}},
		{"add-annotation-0", func() error {
			return e.AddAnnotation(spec0.Ann, spec0.Focal(1))
		}},
		{"process-0", func() error {
			_, _, err := e.Process(spec0.Ann.ID)
			return err
		}},
		{"mutate-db", func() error {
			return e.MutateDB(func(db *nebula.Database) error {
				tbl := db.MustTable("Gene")
				row, err := tbl.Insert([]nebula.Value{
					nebula.String("JW99999"), nebula.String("zzzZ"),
					nebula.Int(123), nebula.String("ACGTACGT"), nebula.String("crash"),
				})
				if err != nil {
					return err
				}
				if err := tbl.UpdateByKey(row.ID.Key, "Length", nebula.Int(321)); err != nil {
					return err
				}
				if !tbl.DeleteByKey(row.ID.Key) {
					return fmt.Errorf("inserted gene vanished")
				}
				return nil
			})
		}},
		{"add-annotation-1", func() error {
			return e.AddAnnotation(spec1.Ann, spec1.Focal(1))
		}},
		{"process-1", func() error {
			_, _, err := e.Process(spec1.Ann.ID)
			return err
		}},
		{"verify-lowest-pending", func() error {
			tasks := e.PendingTasks()
			if len(tasks) < 2 {
				return fmt.Errorf("only %d pending tasks; fixture needs >= 2", len(tasks))
			}
			sort.Slice(tasks, func(i, j int) bool { return tasks[i].VID < tasks[j].VID })
			return e.VerifyAttachment(tasks[0].VID)
		}},
		{"reject-highest-pending", func() error {
			tasks := e.PendingTasks()
			sort.Slice(tasks, func(i, j int) bool { return tasks[i].VID < tasks[j].VID })
			return e.RejectAttachment(tasks[len(tasks)-1].VID)
		}},
		{"resolve-oracle-0", func() error {
			_, _, err := e.ResolveWithOracle(spec0.Ann.ID, nebula.IdealOracle(ds.Ideal))
			return err
		}},
		{"delete-tuple", func() error {
			targets := spec1.Hidden(1)
			if len(targets) == 0 {
				targets = spec1.Focal(1)
			}
			_, _, err := e.DeleteTuple(targets[0])
			return err
		}},
		{"set-bounds-narrow", func() error {
			return e.SetBounds(nebula.Bounds{Lower: 0.2, Upper: 0.8})
		}},
	}
}

// runScript runs every step, failing the test on any error.
func runScript(t testing.TB, e *nebula.Engine, ds *workload.Dataset) {
	t.Helper()
	for _, s := range crashScript(e, ds) {
		if err := s.run(); err != nil {
			t.Fatalf("step %s: %v", s.name, err)
		}
	}
}

// fingerprint captures everything recovery is accountable for: the
// snapshot stream (data, annotations, attachments, ACG, bounds, pending
// queue) with the pending tasks and active bounds ALSO dumped explicitly
// through their public APIs, so a snapshot-layer bug cannot silently
// vanish from both sides of a comparison. Two engines with equal
// fingerprints are indistinguishable to every durable API.
//
// The hop profile is zeroed first: it is adaptive tuning statistics
// updated by (otherwise read-only) discovery, explicitly outside the
// durability contract — checkpoints carry it, replay does not rebuild
// it, and losing post-checkpoint observations in a crash is acceptable.
func fingerprint(t testing.TB, e *nebula.Engine) string {
	t.Helper()
	e.Profile().RestoreCounts(nil, 0)
	var sb strings.Builder
	var snap bytes.Buffer
	if err := e.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	sb.Write(snap.Bytes())
	tasks := e.PendingTasks()
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].VID < tasks[j].VID })
	for _, task := range tasks {
		fmt.Fprintf(&sb, "\ntask %d %s %s %.9f %v %v",
			task.VID, task.Annotation, task.Tuple, task.Confidence, task.Evidence, task.Decision)
	}
	b := e.Bounds()
	fmt.Fprintf(&sb, "\nbounds %.9f %.9f", b.Lower, b.Upper)
	return sb.String()
}

// segmentFile reads the single WAL segment the scripted run produced.
func segmentFile(t testing.TB, dir string) (string, []byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ent := range entries {
		names = append(names, ent.Name())
	}
	if len(names) != 1 {
		t.Fatalf("expected exactly one segment, got %v", names)
	}
	data, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatal(err)
	}
	return names[0], data
}

// recordOffsets scans a segment image and returns the byte offset of
// every frame boundary: offsets[k] is where record k starts, and the
// final entry is the file length. These are exactly the clean crash
// points.
func recordOffsets(t testing.TB, data []byte) []int64 {
	t.Helper()
	offs := []int64{0}
	r := bytes.NewReader(data)
	total := int64(len(data))
	for {
		_, err := wal.DecodeRecord(r)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("scan at offset %d: %v", total-int64(r.Len()), err)
		}
		offs = append(offs, total-int64(r.Len()))
	}
	return offs
}

// recoverImage restores the baseline snapshot and replays a crafted
// segment image over it — one simulated crash recovery.
func recoverImage(t testing.TB, baseline []byte, segName string, image []byte) (*nebula.Engine, wal.ReplayStats) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName), image, 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := nebula.RestoreEngine(bytes.NewReader(baseline), configureWorkloadMeta, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.ReplayWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, stats
}

// TestWALCrashRecoveryMatrix is the core harness: cut the log at EVERY
// record boundary and at sampled interior bytes of every frame, recover
// each cut twice, and assert
//
//   - boundary cuts replay cleanly to a deterministic state, one new
//     state per record (every record matters);
//   - the full log reconstructs the live engine's exact final state;
//   - interior cuts are detected as a corrupt tail, discarded with exact
//     byte accounting, and recover to the floor boundary's state — a
//     torn record is NEVER partially applied.
func TestWALCrashRecoveryMatrix(t *testing.T) {
	e, ds, baseline := crashFixture(t)
	walDir := t.TempDir()
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(l)
	runScript(t, e, ds)
	finalFP := fingerprint(t, e)
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	segName, data := segmentFile(t, walDir)
	offs := recordOffsets(t, data)
	n := len(offs) - 1
	if n < 10 {
		t.Fatalf("script produced only %d records; matrix needs a real log", n)
	}
	t.Logf("matrix: %d records, %d bytes", n, len(data))

	// Every record boundary: clean recovery, deterministic, monotone.
	fps := make([]string, n+1)
	for k := 0; k <= n; k++ {
		re, stats := recoverImage(t, baseline, segName, data[:offs[k]])
		if stats.CorruptTail || stats.DiscardedBytes != 0 {
			t.Fatalf("cut at boundary %d flagged corrupt: %+v", k, stats)
		}
		if stats.Records != k || stats.ApplyErrors != 0 {
			t.Fatalf("cut at boundary %d: replayed %d records, %d apply errors",
				k, stats.Records, stats.ApplyErrors)
		}
		fps[k] = fingerprint(t, re)
		re2, _ := recoverImage(t, baseline, segName, data[:offs[k]])
		if fingerprint(t, re2) != fps[k] {
			t.Fatalf("recovery at boundary %d is nondeterministic", k)
		}
		if k > 0 && fps[k] == fps[k-1] {
			t.Errorf("record %d had no effect on recovered state", k)
		}
	}
	if fps[n] != finalFP {
		t.Fatal("full-log recovery does not reproduce the live engine's state")
	}

	// Interior bytes of every frame: first byte in, midpoint, last byte
	// short — the torn-write shapes. Each must discard exactly the torn
	// frame and land on the floor boundary's state.
	for k := 0; k < n; k++ {
		width := offs[k+1] - offs[k]
		cuts := []int64{offs[k] + 1, offs[k] + width/2, offs[k+1] - 1}
		for _, p := range cuts {
			if p <= offs[k] || p >= offs[k+1] {
				continue
			}
			re, stats := recoverImage(t, baseline, segName, data[:p])
			if !stats.CorruptTail {
				t.Fatalf("cut inside record %d at byte %d not flagged as corrupt tail", k, p)
			}
			if stats.Records != k {
				t.Fatalf("cut inside record %d at byte %d replayed %d records", k, p, stats.Records)
			}
			if stats.DiscardedBytes != p-offs[k] {
				t.Fatalf("cut inside record %d at byte %d: discarded %d bytes, want %d",
					k, p, stats.DiscardedBytes, p-offs[k])
			}
			if fingerprint(t, re) != fps[k] {
				t.Fatalf("cut inside record %d at byte %d recovered to a state != boundary %d", k, p, k)
			}
		}
	}

	// Bit rot mid-file: a flipped byte in record j's payload discards j
	// and everything after it (within one segment there is no way to
	// know the suffix realigned correctly), landing on boundary j.
	j := n / 2
	rotten := append([]byte(nil), data...)
	rotten[offs[j]+13] ^= 0x40
	re, stats := recoverImage(t, baseline, segName, rotten)
	if !stats.CorruptTail || stats.Records != j {
		t.Fatalf("bit rot in record %d: %+v", j, stats)
	}
	if stats.DiscardedBytes != int64(len(data))-offs[j] {
		t.Fatalf("bit rot in record %d discarded %d bytes, want %d",
			j, stats.DiscardedBytes, int64(len(data))-offs[j])
	}
	if fingerprint(t, re) != fps[j] {
		t.Fatalf("bit rot recovery diverged from boundary %d", j)
	}
}

// TestWALCrashInteriorCorruptionRefusesRecovery splits the scripted log
// into two segments and corrupts the FIRST: records exist after the
// tear, so this is not a crash tail — history has a hole, and recovery
// must refuse rather than silently skip it.
func TestWALCrashInteriorCorruptionRefusesRecovery(t *testing.T) {
	e, ds, baseline := crashFixture(t)
	walDir := t.TempDir()
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(l)
	runScript(t, e, ds)
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	_, data := segmentFile(t, walDir)
	offs := recordOffsets(t, data)
	mid := (len(offs) - 1) / 2

	dir := t.TempDir()
	seg1 := append([]byte(nil), data[:offs[mid]]...)
	seg1[offs[0]+13] ^= 0x40 // rot the first record
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000002.log"), data[offs[mid]:], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := nebula.RestoreEngine(bytes.NewReader(baseline), configureWorkloadMeta, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.ReplayWAL(dir, nil); !errors.Is(err, wal.ErrCorruptInterior) {
		t.Fatalf("interior corruption replayed without refusal: %v", err)
	}
}

// TestWALCrashTornTailHealedAcrossRestarts is the crash → boot → boot
// sequence: a torn tail is discarded on the first boot AND truncated away
// on disk, so after that boot appends to a fresh segment (RecoverWAL with
// no checkpoint), the next boot must not misread the old tear as interior
// corruption and refuse recovery. Before the heal, one crash mid-append
// made the store permanently unrecoverable two restarts later.
func TestWALCrashTornTailHealedAcrossRestarts(t *testing.T) {
	e, ds, baseline := crashFixture(t)
	walDir := t.TempDir()
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(l)
	runScript(t, e, ds)
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	segName, data := segmentFile(t, walDir)
	offs := recordOffsets(t, data)
	n := len(offs) - 1
	// Crash: tear mid-way through the final record.
	cut := offs[n-1] + (offs[n]-offs[n-1])/2
	if err := os.WriteFile(filepath.Join(walDir, segName), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	// Boot 1: recover, checkpoint nothing, mutate, shut down. The tear is
	// discarded and the segment healed to its durable prefix.
	re, err := nebula.RestoreEngine(bytes.NewReader(baseline), configureWorkloadMeta, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := re.RecoverWAL(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CorruptTail || stats.Records != n-1 {
		t.Fatalf("boot 1: %+v, want torn tail after %d records", stats, n-1)
	}
	if err := re.SetBounds(nebula.Bounds{Lower: 0.11, Upper: 0.91}); err != nil {
		t.Fatalf("boot 1 mutation: %v", err)
	}
	fp1 := fingerprint(t, re)
	if err := re.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Boot 2: the healed segment 1 plus boot 1's segment must replay
	// cleanly — this recovery used to refuse with ErrCorruptInterior.
	re2, err := nebula.RestoreEngine(bytes.NewReader(baseline), configureWorkloadMeta, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stats2, err := re2.RecoverWAL(walDir, wal.Options{})
	if err != nil {
		t.Fatalf("boot 2 refused recovery: %v", err)
	}
	if stats2.CorruptTail {
		t.Fatalf("boot 2 saw the healed tear resurface: %+v", stats2)
	}
	if got := fingerprint(t, re2); got != fp1 {
		t.Fatal("boot 2 state diverged from boot 1")
	}
	if err := re2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestWALMutatorsRaceClose drives mutations concurrently with CloseWAL:
// each mutation must either fail cleanly or — if it applied its change —
// commit against the binding it logged through, never ack by finding the
// engine's WAL pointer already detached, and never poison the log by
// fsyncing a closed fd.
func TestWALMutatorsRaceClose(t *testing.T) {
	e, _, _ := crashFixture(t)
	walDir := t.TempDir()
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(l)

	const writers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, writers*20)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				lo := 0.01 * float64((w*20+i)%40)
				if err := e.SetBounds(nebula.Bounds{Lower: lo, Upper: lo + 0.5}); err != nil {
					errCh <- err
				}
			}
		}(w)
	}
	if err := e.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL racing mutators: %v", err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		// Mutations that lose the race to the closing log must surface the
		// closed log, not invent a sync failure or a poisoned log.
		if !errors.Is(err, wal.ErrClosed) {
			t.Fatalf("mutation racing CloseWAL failed with %v, want ErrClosed or success", err)
		}
	}
}

// TestWALCrashFsyncPoisoning injects an fsync failure mid-script: the
// failing operation must surface the error, every later logged mutation
// must be refused (fail-stop — the log is poisoned), and a restart must
// recover exactly the state the engine reached in memory: nothing the
// engine applied before the failure is lost, nothing it refused leaks in.
func TestWALCrashFsyncPoisoning(t *testing.T) {
	e, ds, baseline := crashFixture(t)
	walDir := t.TempDir()
	ffs := faultinject.WrapFS(nil, faultinject.FSConfig{FailSyncAt: 4})
	l, err := wal.Open(walDir, wal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWALFS(l, ffs)

	var firstErr error
	var failed int
	for _, s := range crashScript(e, ds) {
		if err := s.run(); err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr == nil {
		t.Fatal("no step failed despite injected fsync fault")
	}
	if !errors.Is(firstErr, wal.ErrFailed) || !errors.Is(firstErr, faultinject.ErrInjected) {
		t.Fatalf("first failure lost its cause chain: %v", firstErr)
	}
	if failed < 2 {
		t.Fatalf("only %d steps failed; the poisoned log should refuse all later mutations", failed)
	}
	// The engine's in-memory state froze at the fault (later mutations
	// abort before applying); its durable image must match it.
	liveFP := fingerprint(t, e)
	e.CloseWAL() // close of a poisoned log may itself error; recovery below is the real check

	re2, err := nebula.RestoreEngine(bytes.NewReader(baseline), configureWorkloadMeta, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rstats, err := re2.ReplayWAL(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.ApplyErrors != 0 {
		t.Fatalf("recovery replay hit %d apply errors", rstats.ApplyErrors)
	}
	if fingerprint(t, re2) != liveFP {
		t.Fatal("recovered state diverged from the engine's state at the fault")
	}
}

// TestWALCheckpointRenameCrash fails the checkpoint's atomic rename —
// the snapshot never lands. The checkpoint must report the error, leave
// no snapshot behind, keep the engine fully usable, and the OLD snapshot
// plus the un-pruned log (now spanning the rotation) must still recover
// the complete state.
func TestWALCheckpointRenameCrash(t *testing.T) {
	e, ds, baseline := crashFixture(t)
	walDir := t.TempDir()
	ffs := faultinject.WrapFS(nil, faultinject.FSConfig{FailRenameAt: 1})
	l, err := wal.Open(walDir, wal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWALFS(l, ffs)

	steps := crashScript(e, ds)
	half := len(steps) / 2
	for _, s := range steps[:half] {
		if err := s.run(); err != nil {
			t.Fatalf("step %s: %v", s.name, err)
		}
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt.snap")
	if err := e.Checkpoint(ckpt); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("checkpoint with failing rename: %v", err)
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed checkpoint left a snapshot file behind")
	}
	// Engine unharmed: the rest of the script runs, spanning the rotated
	// segment.
	for _, s := range steps[half:] {
		if err := s.run(); err != nil {
			t.Fatalf("post-checkpoint step %s: %v", s.name, err)
		}
	}
	liveFP := fingerprint(t, e)
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	re, err := nebula.RestoreEngine(bytes.NewReader(baseline), configureWorkloadMeta, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := re.ReplayWAL(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 2 {
		t.Fatalf("expected the failed checkpoint's rotation to leave 2 segments, replayed %d", stats.Segments)
	}
	if fingerprint(t, re) != liveFP {
		t.Fatal("old snapshot + full log did not recover the complete state")
	}
}

// TestWALCheckpointPruneCrash fails the prune AFTER the checkpoint
// snapshot is durable: stale covered segments survive on disk. The
// recorded coverage boundary must make recovery skip them — replaying
// them onto the new snapshot would double-apply history.
func TestWALCheckpointPruneCrash(t *testing.T) {
	e, ds, baseline := crashFixture(t)
	walDir := t.TempDir()
	ffs := faultinject.WrapFS(nil, faultinject.FSConfig{FailRemoveAt: 1})
	l, err := wal.Open(walDir, wal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWALFS(l, ffs)

	var pruneLogs int
	defer nebula.SetWALLogf(func(format string, args ...any) { pruneLogs++ })()

	steps := crashScript(e, ds)
	half := len(steps) / 2
	for _, s := range steps[:half] {
		if err := s.run(); err != nil {
			t.Fatalf("step %s: %v", s.name, err)
		}
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt.snap")
	if err := e.Checkpoint(ckpt); err != nil {
		t.Fatalf("checkpoint must survive a prune failure: %v", err)
	}
	if pruneLogs == 0 {
		t.Error("prune failure was not surfaced to the log")
	}
	for _, s := range steps[half:] {
		if err := s.run(); err != nil {
			t.Fatalf("post-checkpoint step %s: %v", s.name, err)
		}
	}
	liveFP := fingerprint(t, e)
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// The stale segment is still there alongside the active one.
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("expected stale + active segments after failed prune, found %d files", len(entries))
	}

	// Recovery from the NEW snapshot: the boundary skips the stale
	// segment — no double apply.
	snapBytes, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	re, err := nebula.RestoreEngine(bytes.NewReader(snapBytes), configureWorkloadMeta, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := re.ReplayWAL(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedSegments != 1 {
		t.Fatalf("stale covered segment not skipped: %+v", stats)
	}
	if fingerprint(t, re) != liveFP {
		t.Fatal("checkpoint + suffix recovery diverged (double apply?)")
	}

	// And the OLD baseline + the full log (stale + active) also recovers:
	// a crash that loses the new snapshot still has complete history.
	re2, err := nebula.RestoreEngine(bytes.NewReader(baseline), configureWorkloadMeta, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re2.ReplayWAL(walDir, nil); err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, re2) != liveFP {
		t.Fatal("baseline + full log recovery diverged")
	}
}
