package nebula_test

import (
	"fmt"
	"log"

	"nebula"
)

// exampleEngine builds the Figure 1 gene table with its metadata.
func exampleEngine() *nebula.Engine {
	db := nebula.NewDatabase()
	gt, err := db.CreateTable(&nebula.Schema{
		Name: "Gene",
		Columns: []nebula.Column{
			{Name: "GID", Type: nebula.TypeString, Indexed: true},
			{Name: "Name", Type: nebula.TypeString, Indexed: true},
			{Name: "Family", Type: nebula.TypeString},
		},
		PrimaryKey: "GID",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range [][]nebula.Value{
		{nebula.String("JW0013"), nebula.String("grpC"), nebula.String("F1")},
		{nebula.String("JW0014"), nebula.String("groP"), nebula.String("F6")},
		{nebula.String("JW0019"), nebula.String("yaaB"), nebula.String("F3")},
	} {
		if _, err := gt.Insert(g); err != nil {
			log.Fatal(err)
		}
	}
	repo := nebula.NewMetaRepository(db, nil)
	if err := repo.AddConcept(&nebula.Concept{
		Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}},
	}); err != nil {
		log.Fatal(err)
	}
	if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{4}`); err != nil {
		log.Fatal(err)
	}
	if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "Name"}, `[a-z]{3}[A-Z]`); err != nil {
		log.Fatal(err)
	}
	e, err := nebula.New(db, repo, nebula.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	return e
}

// Example runs the paper's running example: Alice's comment on gene JW0019
// references two other genes, and Nebula discovers the missing attachments.
func Example() {
	engine := exampleEngine()
	gt := engine.DB().MustTable("Gene")
	yaaB, _ := gt.GetByPK(nebula.String("JW0019"))

	err := engine.AddAnnotation(&nebula.Annotation{
		ID:   "alice",
		Body: "From the exp, it seems this gene is correlated to JW0014 of grpC",
	}, []nebula.TupleID{yaaB.ID})
	if err != nil {
		log.Fatal(err)
	}
	disc, _, err := engine.Process("alice")
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range disc.Candidates {
		fmt.Printf("%s conf=%.2f\n", c.Tuple.MustGet("GID").Str(), c.Confidence)
	}
	// Output:
	// JW0014 conf=1.00
	// JW0013 conf=1.00
}

// ExampleEngine_ExecCommand drives the extended-SQL surface: annotate a
// tuple, discover its references, and query with propagation.
func ExampleEngine_ExecCommand() {
	engine := exampleEngine()
	cmds := []string{
		"ANNOTATE Gene 'JW0019' AS 'note' BODY 'this gene pairs with JW0013'",
		"PROCESS 'note'",
		"SELECT GID FROM Gene WHERE GID = 'JW0013' WITH ANNOTATIONS",
	}
	for _, cmd := range cmds {
		res, err := engine.ExecCommand(cmd)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Message)
	}
	// Output:
	// annotation "note" attached to Gene/s:jw0019
	// 1 candidates: 1 accepted, 0 pending, 0 rejected
	// 1 row(s)
}

// ExampleEngine_PropagateQuery shows query-time annotation propagation.
func ExampleEngine_PropagateQuery() {
	engine := exampleEngine()
	gt := engine.DB().MustTable("Gene")
	grpC, _ := gt.GetByPK(nebula.String("JW0013"))
	if err := engine.AddAnnotation(&nebula.Annotation{
		ID: "flag", Body: "verified",
	}, []nebula.TupleID{grpC.ID}); err != nil {
		log.Fatal(err)
	}
	rows, err := engine.PropagateQuery(nebula.StructuredQuery{
		Table: "Gene",
		Predicates: []nebula.Predicate{
			{Column: "Family", Op: nebula.OpEq, Operand: nebula.String("F1")},
		},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range rows {
		fmt.Printf("%s: %d annotation(s)\n", pr.Row.MustGet("GID").Str(), len(pr.Annotations))
	}
	// Output:
	// JW0013: 1 annotation(s)
}
