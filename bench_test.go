// Benchmarks regenerating every table and figure of the paper's evaluation
// (§8). Each BenchmarkFigNN target wraps the corresponding harness entry in
// internal/bench; the table is printed once per run so that
// `go test -bench=. -benchmem | tee bench_output.txt` captures both the
// figures' rows and the machine cost of producing them.
//
// Dataset selection: NEBULA_BENCH_SIZE=tiny|small|mid|large (default
// small). The paper's D_small/D_mid/D_large sweep of Figures 12–13 runs all
// three when NEBULA_BENCH_ALL_SIZES=1 (several minutes on first generation).
package nebula_test

import (
	"os"
	"sync"
	"testing"

	"nebula/internal/bench"
)

const benchSeed = 42

func benchSize() string {
	if s := os.Getenv("NEBULA_BENCH_SIZE"); s != "" {
		return s
	}
	return "small"
}

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	env, err := bench.LoadEnv(benchSize(), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func benchEnvs(b *testing.B) []*bench.Env {
	b.Helper()
	sizes := []string{benchSize()}
	if os.Getenv("NEBULA_BENCH_ALL_SIZES") == "1" {
		sizes = bench.DatasetSizes
	}
	var envs []*bench.Env
	for _, s := range sizes {
		env, err := bench.LoadEnv(s, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		envs = append(envs, env)
	}
	return envs
}

var printOnce sync.Map

// printTables prints the tables once per benchmark name, keeping repeated
// b.N iterations quiet.
func printTables(name string, tables ...*bench.Table) {
	if _, loaded := printOnce.LoadOrStore(name, true); loaded {
		return
	}
	for _, t := range tables {
		t.Print(os.Stdout)
	}
}

// BenchmarkFig11QueryGeneration regenerates Figure 11(a,b,c): Stage-1 query
// generation time by phase, query counts, and query FP/FN quality across
// ε ∈ {0.4, 0.6, 0.8} and the four L^m workloads.
func BenchmarkFig11QueryGeneration(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := bench.Fig11a(env)
		bt := bench.Fig11b(env)
		c := bench.Fig11c(env)
		if i == 0 {
			b.StopTimer()
			printTables(b.Name(), a, bt, c)
			b.StartTimer()
		}
	}
}

// BenchmarkFig12Execution regenerates Figure 12(a,b): keyword-query
// execution time and produced candidate tuples for Naive vs Nebula-0.6 vs
// Nebula-0.8.
func BenchmarkFig12Execution(b *testing.B) {
	envs := benchEnvs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := bench.Fig12a(envs, false)
		bt := bench.Fig12b(envs, false)
		if i == 0 {
			b.StopTimer()
			printTables(b.Name(), a, bt)
			b.StartTimer()
		}
	}
}

// BenchmarkFig13Sharing regenerates Figure 13: shared multi-query execution
// vs isolated execution.
func BenchmarkFig13Sharing(b *testing.B) {
	envs := benchEnvs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := bench.Fig13(envs)
		if i == 0 {
			b.StopTimer()
			printTables(b.Name(), t)
			b.StartTimer()
		}
	}
}

// BenchmarkFig14FocalSpreading regenerates Figure 14(a,b): the approximate
// focal-spreading search across Δ ∈ {1,2,3} and K ∈ {2,3,4}.
func BenchmarkFig14FocalSpreading(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := bench.Fig14a(env)
		bt := bench.Fig14b(env)
		if i == 0 {
			b.StopTimer()
			printTables(b.Name(), a, bt)
			b.StartTimer()
		}
	}
}

// BenchmarkFig15Assessment regenerates Figure 15(a): the Definition 7.2
// criteria for the eight configurations under adaptively tuned bounds.
func BenchmarkFig15Assessment(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig15a(env, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			printTables(b.Name(), t)
			b.StartTimer()
		}
	}
}

// BenchmarkFig15NoExperts regenerates Figure 15(b): the degenerate
// β_lower = β_upper = 0.5 configuration without expert involvement.
func BenchmarkFig15NoExperts(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := bench.Fig15b(env)
		if i == 0 {
			b.StopTimer()
			printTables(b.Name(), t)
			b.StartTimer()
		}
	}
}

// BenchmarkNaiveAssessment regenerates the §8.2 naive-baseline spot check
// ({F_N, F_P, M_F, M_H} for L^50 under the naive search).
func BenchmarkNaiveAssessment(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := bench.NaiveAssessment(env)
		if i == 0 {
			b.StopTimer()
			printTables(b.Name(), t)
			b.StartTimer()
		}
	}
}

// BenchmarkHopProfile regenerates the Figure 7-style hop-distance profile.
func BenchmarkHopProfile(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := bench.HopProfileTable(env)
		if i == 0 {
			b.StopTimer()
			printTables(b.Name(), t)
			b.StartTimer()
		}
	}
}

// BenchmarkAblations runs the two design-choice ablations DESIGN.md calls
// out: context-based weight adjustment and focal-based confidence
// adjustment.
func BenchmarkAblations(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := bench.AblationContextAdjustment(env)
		f := bench.AblationFocalAdjustment(env)
		s := bench.AblationSearchTechnique(env)
		if i == 0 {
			b.StopTimer()
			printTables(b.Name(), c, f, s)
			b.StartTimer()
		}
	}
}

// BenchmarkDatasetGeneration measures the synthetic generator itself (the
// substrate standing in for the UniProt extract).
func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// A distinct seed defeats the env cache so generation is measured.
		if _, err := bench.LoadEnv("tiny", int64(1000+i)); err != nil {
			b.Fatal(err)
		}
	}
}
