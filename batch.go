package nebula

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// BatchResult is the outcome of one annotation inside a batch call. Every
// input ID yields exactly one BatchResult, at the same index; failures are
// per-annotation, never batch-wide.
type BatchResult struct {
	// ID is the annotation the result belongs to.
	ID AnnotationID
	// Discovery is the (possibly partial) discovery output; nil when the
	// annotation failed before discovery produced anything.
	Discovery *Discovery
	// Outcome is the Stage-3 verification routing (ProcessBatch only; zero
	// for DiscoverBatch and for annotations whose discovery errored).
	Outcome VerificationOutcome
	// Err is the annotation's error: typed ErrCancelled/ErrBudgetExceeded/
	// ErrSpamAnnotation with partial results attached, ErrInternal for a
	// recovered worker panic, or nil.
	Err error
}

// DiscoverBatch runs discovery for a set of stored annotations, fanning the
// independent runs across the engine's worker pool (Options.Parallelism).
// Results align with the input order and are byte-identical to calling
// Discover sequentially — parallelism changes scheduling, never output.
func (e *Engine) DiscoverBatch(ids []AnnotationID) []BatchResult {
	return e.DiscoverBatchContext(context.Background(), ids)
}

// DiscoverBatchContext is DiscoverBatch under governance. On cancellation
// the pool drains: in-flight annotations finish (returning their partial
// Discovery with ErrCancelled), not-yet-started ones report the context's
// error without running. A panic inside one worker poisons only that
// annotation's result (ErrInternal), never its batch-mates.
func (e *Engine) DiscoverBatchContext(ctx context.Context, ids []AnnotationID) []BatchResult {
	return e.DiscoverBatchRequest(ctx, ids, RequestOptions{})
}

// DiscoverBatchRequest is DiscoverBatchContext with per-request governance
// (see RequestOptions). The batch is read-only against engine state, so it
// holds the engine's read lock and runs concurrently with other discover
// requests and snapshot captures. An invalid request poisons every slot
// with the validation error rather than silently running unbounded.
func (e *Engine) DiscoverBatchRequest(ctx context.Context, ids []AnnotationID, req RequestOptions) []BatchResult {
	if err := req.Validate(); err != nil {
		return batchError(ids, err)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.runBatch(ctx, ids, false, req.apply(e.opts))
}

// batchError fills one BatchResult per input with the same error.
func batchError(ids []AnnotationID, err error) []BatchResult {
	results := make([]BatchResult, len(ids))
	for i, id := range ids {
		results[i] = BatchResult{ID: id, Err: err}
	}
	return results
}

// ProcessBatch runs the full pipeline for a set of stored annotations:
// discovery fans out across the worker pool, then Stage-3 verification
// routing runs sequentially in input order — so VIDs, ACG updates, and
// pending-task order are identical to calling Process in a loop.
func (e *Engine) ProcessBatch(ids []AnnotationID) []BatchResult {
	return e.ProcessBatchContext(context.Background(), ids)
}

// ProcessBatchContext is ProcessBatch under governance; see
// DiscoverBatchContext for the cancellation and panic-isolation contract.
// An annotation whose discovery errors (cancellation, budget, spam, panic)
// is not submitted to verification, exactly as ProcessContext would.
func (e *Engine) ProcessBatchContext(ctx context.Context, ids []AnnotationID) []BatchResult {
	return e.ProcessBatchRequest(ctx, ids, RequestOptions{})
}

// ProcessBatchRequest is ProcessBatchContext with per-request governance.
// Stage 3 mutates engine state, so the whole batch holds the engine lock
// exclusively (unlike DiscoverBatchRequest).
func (e *Engine) ProcessBatchRequest(ctx context.Context, ids []AnnotationID, req RequestOptions) []BatchResult {
	if err := req.Validate(); err != nil {
		return batchError(ids, err)
	}
	e.mu.Lock()
	wb := e.wal
	results := e.runBatch(ctx, ids, true, req.apply(e.opts))
	e.mu.Unlock()
	if err := wb.commit(nil); err != nil {
		// The group fsync covering every logged submission failed; no slot
		// may acknowledge a durable routing.
		for i := range results {
			if results[i].Err == nil {
				results[i].Err = err
				results[i].Outcome = VerificationOutcome{}
			}
		}
	}
	return results
}

// runBatch is the shared batch core. Callers hold e.mu for the whole batch
// — in read mode for discover-only batches, exclusively when process is
// set: the discovery phase is read-only against the engine state
// (annotation lookups happen before fan-out, the symbol index is pre-built
// below), so the runs are safe to execute concurrently under the one lock;
// the verification phase mutates state and runs sequentially in input
// order.
func (e *Engine) runBatch(ctx context.Context, ids []AnnotationID, process bool, opts Options) []BatchResult {
	results := make([]BatchResult, len(ids))
	type input struct {
		a     *Annotation
		focal []TupleID
	}
	inputs := make([]input, len(ids))
	for i, id := range ids {
		results[i].ID = id
		a, ok := e.store.Get(id)
		if !ok {
			results[i].Err = fmt.Errorf("%w %q", ErrUnknownAnnotation, id)
			continue
		}
		inputs[i] = input{a: a, focal: e.store.Focal(id)}
	}
	// The symbol-table technique builds its full-database index lazily on
	// first use; build it before fan-out so workers only read it.
	if opts.SearcherFactory == nil && opts.SearchTechnique == TechniqueSymbolTable {
		e.symbolSearcher(e.db)
	}

	workers := resolveWorkers(opts.Parallelism)
	started := make([]bool, len(ids))
	batchPool(ctx, len(ids), workers, func(i int) {
		if inputs[i].a == nil {
			return
		}
		started[i] = true
		defer func() {
			if r := recover(); r != nil {
				results[i].Err = fmt.Errorf("%w: panic: %v\n%s", ErrInternal, r, debug.Stack())
			}
		}()
		results[i].Discovery, results[i].Err = e.discover(ctx, inputs[i].a, inputs[i].focal, opts)
	})
	for i := range results {
		if inputs[i].a != nil && !started[i] {
			// The pool drained on cancellation before this annotation ran.
			results[i].Err = wrapBatchCtxErr(ctx.Err())
		}
	}
	if !process {
		return results
	}
	// Stage 3, sequentially in input order: Submit mutates the store, the
	// ACG, and the hop profile, and assigns VIDs — input order keeps every
	// one of those deterministic whatever the discovery schedule was.
	for i := range results {
		if results[i].Err != nil || inputs[i].a == nil {
			continue
		}
		disc := results[i].Discovery
		degraded := len(disc.Degraded()) > 0
		submit := e.manager.Submit
		if degraded {
			submit = e.manager.SubmitDegraded
		}
		// Log the computed routing before applying it, exactly like the
		// single-annotation Process path; an append failure poisons only
		// this slot.
		if err := e.walAppend(recSubmit(ids[i], disc, degraded, e.manager.NextVID())); err != nil {
			results[i].Err = err
			continue
		}
		e.bumpMutEpochFor(ids[i])
		outcome, err := submit(ids[i], disc.Focal, disc.Candidates)
		if err != nil {
			results[i].Err = err
			continue
		}
		results[i].Outcome = outcome
	}
	return results
}

// wrapBatchCtxErr types a context error for a batch slot that never ran.
func wrapBatchCtxErr(err error) error {
	switch err {
	case context.Canceled:
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	case context.DeadlineExceeded:
		return fmt.Errorf("%w: %v", ErrBudgetExceeded, err)
	case nil:
		return fmt.Errorf("%w: batch slot skipped", ErrCancelled)
	default:
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	}
}

// batchPool fans n independent tasks across up to workers goroutines,
// handing tasks out through an atomic counter. Once ctx is cancelled
// workers stop picking up new tasks and the pool drains. Tasks write only
// to their own result slots and recover their own panics, so the pool
// needs no locking and never re-raises.
func batchPool(ctx context.Context, n, workers int, task func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			task(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}
