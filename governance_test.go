package nebula_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nebula"
	"nebula/internal/faultinject"
	"nebula/internal/keyword"
	"nebula/internal/workload"
)

// addSpec inserts one workload annotation with Δ=1 focal and returns its ID.
func addSpec(t *testing.T, e *nebula.Engine, ds *workload.Dataset, idx int) nebula.AnnotationID {
	t.Helper()
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[idx]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	return spec.Ann.ID
}

// injectingFactory returns a SearcherFactory wrapping the default metadata
// technique with fault injection, and a pointer through which the test can
// reach the injector the last discovery run used. The pointer write is
// atomic because read-locked discoveries invoke the factory concurrently.
func injectingFactory(ds *workload.Dataset, cfg faultinject.Config) (nebula.Options, *atomic.Pointer[faultinject.Searcher]) {
	var last atomic.Pointer[faultinject.Searcher]
	opts := nebula.DefaultOptions()
	opts.SearcherFactory = func(db *nebula.Database) nebula.KeywordSearcher {
		s := faultinject.Wrap(keyword.NewEngine(db, ds.Meta), cfg)
		last.Store(s)
		return s
	}
	return opts, &last
}

func TestDeadlineReturnsTypedErrorAndPartials(t *testing.T) {
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	opts, _ := injectingFactory(ds, faultinject.Config{Latency: time.Second})
	opts.Budget.Deadline = time.Millisecond
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	id := addSpec(t, e, ds, 0)

	start := time.Now()
	disc, err := e.DiscoverContext(context.Background(), id)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadline did not fire (%v elapsed)", elapsed)
	}
	if !errors.Is(err, nebula.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if disc == nil {
		t.Fatal("interrupted run must still return the partial Discovery")
	}
	if len(disc.Queries) == 0 {
		t.Error("Stage 1 completed before the deadline; queries must be present")
	}
	if len(disc.Degraded()) == 0 {
		t.Error("interrupted run must record degradation reasons")
	}
}

func TestProcessInterruptedSubmitsNothing(t *testing.T) {
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	opts, _ := injectingFactory(ds, faultinject.Config{Latency: time.Second})
	opts.Budget.Deadline = time.Millisecond
	opts.Bounds = nebula.Bounds{Lower: 0, Upper: 0.1} // would accept nearly anything
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	id := addSpec(t, e, ds, 0)

	disc, outcome, err := e.ProcessContext(context.Background(), id)
	if !errors.Is(err, nebula.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if disc == nil {
		t.Fatal("interrupted Process must return the partial Discovery")
	}
	if len(outcome.Accepted)+len(outcome.Pending)+len(outcome.Rejected) != 0 {
		t.Errorf("interrupted run routed candidates: %+v", outcome)
	}
	if len(e.PendingTasks()) != 0 {
		t.Error("interrupted run enqueued verification tasks")
	}
}

func TestCancelledContextReturnsErrCancelled(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	id := addSpec(t, e, ds, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.DiscoverContext(ctx, id)
	if !errors.Is(err, nebula.ErrCancelled) {
		t.Errorf("Discover err = %v, want ErrCancelled", err)
	}
	_, err = e.NaiveDiscoverContext(ctx, id)
	if !errors.Is(err, nebula.ErrCancelled) {
		t.Errorf("NaiveDiscover err = %v, want ErrCancelled", err)
	}
}

// TestUngovernedRunsAreIdentical pins the acceptance criterion that runs
// with no budget behave identically to the legacy path, and that merely
// making a run cancellable (a live, never-cancelled context) does not
// change its output either.
func TestUngovernedRunsAreIdentical(t *testing.T) {
	// Caching off: this test asserts ExecStats equality across repeated
	// identical runs, which requires each run to do the actual work rather
	// than short-circuit on the discovery cache (stats account real cost).
	opts := nebula.DefaultOptions()
	opts.Cache.Disabled = true
	e, ds := engineFixture(t, opts)
	id := addSpec(t, e, ds, 0)

	legacy, err := e.Discover(id)
	if err != nil {
		t.Fatal(err)
	}
	// A background context with a zero budget takes the exact legacy code
	// path: everything matches, execution cost included.
	background, err := e.DiscoverContext(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Candidates, background.Candidates) ||
		!reflect.DeepEqual(legacy.Queries, background.Queries) ||
		!reflect.DeepEqual(legacy.ExecStats, background.ExecStats) {
		t.Error("background-context run diverged from legacy Discover")
	}
	// A live (cancellable) context switches to chunked execution — same
	// queries, same candidates; only the scan-sharing economics may differ.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	governed, err := e.DiscoverContext(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Queries, governed.Queries) {
		t.Error("governed run generated different queries")
	}
	if !reflect.DeepEqual(legacy.Candidates, governed.Candidates) {
		t.Error("governed run produced different candidates")
	}
	if len(legacy.Degraded()) != 0 || len(governed.Degraded()) != 0 {
		t.Errorf("unbounded runs must not degrade: %v / %v", legacy.Degraded(), governed.Degraded())
	}
}

func TestCountBudgetsDegradeWithoutError(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.Budget = nebula.Budget{MaxQueries: 1, MaxCandidates: 2}
	e, ds := engineFixture(t, opts)
	id := addSpec(t, e, ds, 0)

	// Establish that the annotation normally produces more work than the
	// budget allows, so the truncations below are real.
	unbounded, ds2 := engineFixture(t, nebula.DefaultOptions())
	spec := ds2.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[0]
	if err := unbounded.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	ref, err := unbounded.Discover(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Queries) < 2 || len(ref.Candidates) < 3 {
		t.Skipf("fixture too small to exercise budgets (%d queries, %d candidates)",
			len(ref.Queries), len(ref.Candidates))
	}

	disc, err := e.Discover(id)
	if err != nil {
		t.Fatalf("count budgets must not error: %v", err)
	}
	if len(disc.Queries) > 1 {
		t.Errorf("MaxQueries=1 left %d queries", len(disc.Queries))
	}
	if len(disc.Candidates) > 2 {
		t.Errorf("MaxCandidates=2 left %d candidates", len(disc.Candidates))
	}
	degraded := disc.Degraded()
	if len(degraded) == 0 {
		t.Fatal("budget truncations must be recorded")
	}
	joined := strings.Join(degraded, "\n")
	if !strings.Contains(joined, "query budget") {
		t.Errorf("missing query-budget reason in %q", joined)
	}
}

func TestScanBudgetBoundsNaiveScan(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.Budget.MaxSearchedRows = 1
	e, ds := engineFixture(t, opts)
	id := addSpec(t, e, ds, 0)
	disc, err := e.NaiveDiscover(id)
	if err != nil {
		t.Fatalf("scan budget must not error: %v", err)
	}
	if scanned := disc.ExecStats.Exec.TuplesScanned; scanned >= e.DB().TotalRows() {
		t.Errorf("budgeted naive scan examined the whole database (%d rows)", scanned)
	}
	if len(disc.Degraded()) == 0 {
		t.Error("scan truncation must be recorded")
	}
}

// TestDegradedRunNeverAutoAccepts is the routing half of the governance
// contract: confidences from a truncated evidence base must not attach
// tuples unattended.
func TestDegradedRunNeverAutoAccepts(t *testing.T) {
	accepting := nebula.DefaultOptions()
	accepting.Bounds = nebula.Bounds{Lower: 0, Upper: 0.5}
	e, ds := engineFixture(t, accepting)
	id := addSpec(t, e, ds, 0)
	_, outcome, err := e.Process(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome.Accepted) == 0 {
		t.Skip("fixture produced no auto-accepts; cannot exercise degraded routing")
	}

	degradedOpts := nebula.DefaultOptions()
	degradedOpts.Bounds = nebula.Bounds{Lower: 0, Upper: 0.5}
	degradedOpts.Budget.MaxQueries = 2
	e2, ds2 := engineFixture(t, degradedOpts)
	id2 := addSpec(t, e2, ds2, 0)
	disc, outcome, err := e2.Process(id2)
	if err != nil {
		t.Fatal(err)
	}
	if len(disc.Degraded()) == 0 {
		t.Skip("budget did not bite; nothing to verify")
	}
	if len(outcome.Accepted) != 0 {
		t.Errorf("degraded run auto-accepted %d candidates", len(outcome.Accepted))
	}
	if len(outcome.Pending) == 0 {
		t.Error("degraded run's confident candidates should be pending, not dropped")
	}
}

func TestTransientFaultsAreRetried(t *testing.T) {
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	opts, inj := injectingFactory(ds, faultinject.Config{FailFirst: 2})
	opts.Retry = nebula.RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond}
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	id := addSpec(t, e, ds, 0)

	disc, err := e.Discover(id)
	if err != nil {
		t.Fatalf("retries should heal two transient faults: %v", err)
	}
	if inj.Load().Calls() != 3 {
		t.Errorf("searcher saw %d calls, want 3 (2 faults + success)", inj.Load().Calls())
	}
	if disc.ExecStats.Retries != 2 {
		t.Errorf("Stats.Retries = %d, want 2", disc.ExecStats.Retries)
	}
	if !strings.Contains(strings.Join(disc.Degraded(), "\n"), "retried") {
		t.Errorf("retried run must be marked degraded: %v", disc.Degraded())
	}
	if len(disc.Candidates) == 0 {
		t.Error("healed run produced no candidates")
	}
}

func TestPersistentFaultsAreNotRetried(t *testing.T) {
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	opts, inj := injectingFactory(ds, faultinject.Config{FailEvery: 1})
	opts.Retry = nebula.RetryPolicy{MaxRetries: 5, BaseDelay: time.Millisecond}
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	id := addSpec(t, e, ds, 0)

	_, err = e.Discover(id)
	if err == nil {
		t.Fatal("persistent fault should surface")
	}
	if errors.Is(err, nebula.ErrCancelled) || errors.Is(err, nebula.ErrBudgetExceeded) {
		t.Errorf("persistent fault mislabeled as governance error: %v", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("cause lost from %v", err)
	}
	if inj.Load().Calls() != 1 {
		t.Errorf("persistent fault was retried (%d calls)", inj.Load().Calls())
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	opts, inj := injectingFactory(ds, faultinject.Config{FailFirst: 100})
	opts.Retry = nebula.RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond}
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	id := addSpec(t, e, ds, 0)
	if _, err := e.Discover(id); err == nil {
		t.Fatal("exhausted retries should surface the fault")
	}
	if inj.Load().Calls() != 3 {
		t.Errorf("searcher saw %d calls, want 3 (initial + 2 retries)", inj.Load().Calls())
	}
}

func TestSpamAnnotationSubmitsNoTasks(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.SpamFraction = 0.001 // on the tiny dataset any candidate set trips
	opts.Bounds = nebula.Bounds{Lower: 0, Upper: 0.1}
	e, ds := engineFixture(t, opts)
	id := addSpec(t, e, ds, 0)

	disc, outcome, err := e.Process(id)
	if !errors.Is(err, nebula.ErrSpamAnnotation) {
		t.Fatalf("err = %v, want ErrSpamAnnotation", err)
	}
	var spam *nebula.SpamError
	if !errors.As(err, &spam) {
		t.Fatalf("error %v does not carry *SpamError", err)
	}
	if spam.Candidates == 0 || spam.DatabaseRows == 0 {
		t.Errorf("spam error missing counts: %+v", spam)
	}
	if disc == nil || len(disc.Candidates) != spam.Candidates {
		t.Error("quarantined candidates must be inspectable on the Discovery")
	}
	if len(outcome.Accepted)+len(outcome.Pending)+len(outcome.Rejected) != 0 {
		t.Errorf("spam run routed candidates: %+v", outcome)
	}
	if len(e.PendingTasks()) != 0 {
		t.Error("spam annotation enqueued verification tasks")
	}
	if len(e.Store().Attachments(id, -1)) != 1 { // only the manual focal
		t.Error("spam annotation gained attachments")
	}
}

// panicSearcher blows up inside the pipeline to exercise the Engine's
// public-boundary panic recovery.
type panicSearcher struct{ db *nebula.Database }

func (p *panicSearcher) Execute(q keyword.Query) ([]keyword.Result, keyword.ExecStats, error) {
	panic("poisoned searcher")
}

func (p *panicSearcher) ExecuteBatch(qs []keyword.Query, shared bool) (map[string][]keyword.Result, keyword.ExecStats, error) {
	panic("poisoned searcher")
}

func (p *panicSearcher) ExecuteBatchContext(ctx context.Context, qs []keyword.Query, shared bool, lim keyword.Limits) (map[string][]keyword.Result, keyword.ExecStats, error) {
	panic("poisoned searcher")
}

func (p *panicSearcher) Database() *nebula.Database { return p.db }

func TestPanicBecomesErrInternal(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.SearcherFactory = func(db *nebula.Database) nebula.KeywordSearcher {
		return &panicSearcher{db: db}
	}
	e, ds := engineFixture(t, opts)
	id := addSpec(t, e, ds, 0)

	if _, err := e.DiscoverContext(context.Background(), id); !errors.Is(err, nebula.ErrInternal) {
		t.Fatalf("Discover err = %v, want ErrInternal", err)
	}
	if _, _, err := e.ProcessContext(context.Background(), id); !errors.Is(err, nebula.ErrInternal) {
		t.Fatalf("Process err = %v, want ErrInternal", err)
	}
	// The poisoned call must not take the engine down with it: the mutex
	// is released and other surfaces keep working.
	if got := len(e.PendingTasks()); got != 0 {
		t.Errorf("pending tasks after panic = %d", got)
	}
	if b := e.Bounds(); b.Upper == 0 {
		t.Error("engine unusable after recovered panic")
	}
}

// TestConcurrentCancellation drives governed discoveries from many
// goroutines with racing deadlines; run under -race this pins the
// thread-safety of the cancellation paths.
func TestConcurrentCancellation(t *testing.T) {
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	opts, _ := injectingFactory(ds, faultinject.Config{Latency: 2 * time.Millisecond})
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})
	ids := make([]nebula.AnnotationID, 4)
	for i := range ids {
		if err := e.AddAnnotation(specs[i].Ann, specs[i].Focal(1)); err != nil {
			t.Fatal(err)
		}
		ids[i] = specs[i].Ann.ID
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			timeout := time.Duration(i%4+1) * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			disc, err := e.DiscoverContext(ctx, ids[i%len(ids)])
			if err != nil && !errors.Is(err, nebula.ErrBudgetExceeded) && !errors.Is(err, nebula.ErrCancelled) {
				t.Errorf("goroutine %d: unexpected error %v", i, err)
			}
			if err != nil && disc == nil {
				t.Errorf("goroutine %d: interrupted run lost its partial Discovery", i)
			}
		}(i)
	}
	wg.Wait()
	// The engine is still healthy afterwards.
	if _, err := e.DiscoverContext(context.Background(), ids[0]); err != nil {
		t.Fatalf("engine unhealthy after concurrent cancellations: %v", err)
	}
}

func TestExecCommandGovernors(t *testing.T) {
	opts := nebula.DefaultOptions()
	e, ds := engineFixture(t, opts)
	id := addSpec(t, e, ds, 0)

	ref, err := e.Discover(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Candidates) < 2 {
		t.Skipf("fixture produced %d candidates; MAX cannot bite", len(ref.Candidates))
	}
	res, err := e.ExecCommand(fmt.Sprintf("DISCOVER '%s' MAX 1", id))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("MAX 1 returned %d rows", len(res.Rows))
	}
	if !strings.Contains(res.Message, "degraded") {
		t.Errorf("message %q does not surface the degradation", res.Message)
	}
	// The statement-level override must not stick on the engine.
	if after, err := e.Discover(id); err != nil || len(after.Candidates) != len(ref.Candidates) {
		t.Errorf("MAX clause leaked into engine options: %d candidates (err %v)", len(after.Candidates), err)
	}
}

func TestBudgetValidation(t *testing.T) {
	ds, err := workload.Generate(workload.TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	opts := nebula.DefaultOptions()
	opts.Budget.MaxQueries = -1
	if _, err := nebula.New(ds.DB, ds.Meta, opts); err == nil {
		t.Error("negative budget accepted")
	}
	opts = nebula.DefaultOptions()
	opts.Retry.MaxRetries = -2
	if _, err := nebula.New(ds.DB, ds.Meta, opts); err == nil {
		t.Error("negative retry count accepted")
	}
}
