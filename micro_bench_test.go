package nebula_test

import (
	"fmt"
	"testing"

	"nebula/internal/acg"
	"nebula/internal/bench"
	"nebula/internal/keyword"
	"nebula/internal/relational"
	"nebula/internal/sigmap"
	"nebula/internal/workload"
)

// Micro-benchmarks for the individual substrates, complementing the
// figure-level benchmarks in bench_test.go. Run with -benchmem to see the
// allocation profiles.

func microDataset(b *testing.B) *workload.Dataset {
	b.Helper()
	env, err := bench.LoadEnv("small", 42)
	if err != nil {
		b.Fatal(err)
	}
	return env.Dataset
}

// BenchmarkRelationalIndexedSelect measures a hash-indexed point query.
func BenchmarkRelationalIndexedSelect(b *testing.B) {
	ds := microDataset(b)
	q := relational.Query{Table: "Gene", Predicates: []relational.Predicate{
		{Column: "GID", Op: relational.OpEq, Operand: relational.String("JW00042")},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.DB.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelationalScanSelect measures a non-indexed column scan.
func BenchmarkRelationalScanSelect(b *testing.B) {
	ds := microDataset(b)
	q := relational.Query{Table: "Gene", Predicates: []relational.Predicate{
		{Column: "Name", Op: relational.OpEq, Operand: relational.String("aabX")},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.DB.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelationalSharedScan measures the batched-scan path of
// SelectMulti with 8 same-column scan queries.
func BenchmarkRelationalSharedScan(b *testing.B) {
	ds := microDataset(b)
	queries := make([]relational.Query, 8)
	for i := range queries {
		queries[i] = relational.Query{Table: "Gene", Predicates: []relational.Predicate{
			{Column: "Name", Op: relational.OpEq,
				Operand: relational.String(fmt.Sprintf("aa%cX", 'a'+i))},
		}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.DB.SelectMulti(queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSigmapGenerate measures Stage-1 query generation on an L^500
// annotation.
func BenchmarkSigmapGenerate(b *testing.B) {
	ds := microDataset(b)
	spec := ds.WorkloadSet(500, workload.RefClass{})[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := sigmap.NewGenerator(ds.Meta, 0.6)
		gen.Generate(spec.Ann.Body)
	}
}

// BenchmarkKeywordExecute measures one hinted Type-2 query through the
// metadata engine.
func BenchmarkKeywordExecute(b *testing.B) {
	ds := microDataset(b)
	engine := keyword.NewEngine(ds.DB, ds.Meta)
	q := keyword.Query{ID: "q", Weight: 1, Keywords: []keyword.Keyword{
		{Text: "gene", Role: keyword.RoleTable, TargetTable: "Gene", Weight: 1},
		{Text: "JW00042", Role: keyword.RoleValue, TargetTable: "Gene", TargetColumn: "GID", Weight: 0.9},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymbolTableBuild measures the pre-processing pass of the
// index-first technique over D_small.
func BenchmarkSymbolTableBuild(b *testing.B) {
	ds := microDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keyword.NewSymbolTableEngine(ds.DB)
	}
}

// BenchmarkACGNeighborhood measures the K=3 BFS + sort used by the
// spreading search.
func BenchmarkACGNeighborhood(b *testing.B) {
	ds := microDataset(b)
	spec := ds.WorkloadSet(100, workload.RefClass{})[0]
	focal := spec.Focal(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.Graph.Neighborhood(focal, 3)
	}
}

// BenchmarkSubsetMaterialize measures miniDB materialization for a K=3
// neighborhood.
func BenchmarkSubsetMaterialize(b *testing.B) {
	ds := microDataset(b)
	spec := ds.WorkloadSet(100, workload.RefClass{})[0]
	ids := ds.Graph.Neighborhood(spec.Focal(1), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.DB.Subset(ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACGPathWeights measures the multi-hop focal adjustment's
// strongest-shortest-path computation.
func BenchmarkACGPathWeights(b *testing.B) {
	ds := microDataset(b)
	spec := ds.WorkloadSet(100, workload.RefClass{})[0]
	source := spec.Focal(1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.Graph.PathWeights(source, 3)
	}
}

// BenchmarkProfileRecord measures hop-profile updates.
func BenchmarkProfileRecord(b *testing.B) {
	p := acg.NewProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Record(i%6, i%17 != 0)
	}
}
