package nebula_test

import (
	"bytes"
	"strings"
	"testing"

	"nebula"
	"nebula/internal/meta"
	"nebula/internal/workload"
)

func TestEngineSnapshotRoundTrip(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	// Do some work so there is nontrivial state: process one annotation.
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[0]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Process(spec.Ann.ID); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	configure := func(db *nebula.Database) (*nebula.MetaRepository, error) {
		repo := nebula.NewMetaRepository(db, nil)
		for _, c := range []*nebula.Concept{
			{Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}}},
			{Name: "Protein", Table: "Protein", ReferencedBy: [][]string{{"PID"}, {"PName", "PType"}}},
		} {
			if err := repo.AddConcept(c); err != nil {
				return nil, err
			}
		}
		if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{5}`); err != nil {
			return nil, err
		}
		if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "Name"}, `[a-z]{3}[A-Z]`); err != nil {
			return nil, err
		}
		if err := repo.SetPattern(nebula.ColumnRef{Table: "Protein", Column: "PID"}, `P[0-9]{5}`); err != nil {
			return nil, err
		}
		return repo, nil
	}
	restored, err := nebula.RestoreEngine(bytes.NewReader(buf.Bytes()), configure, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// State carried over.
	if restored.DB().TotalRows() != e.DB().TotalRows() {
		t.Errorf("rows %d != %d", restored.DB().TotalRows(), e.DB().TotalRows())
	}
	if restored.Store().Len() != e.Store().Len() ||
		restored.Store().EdgeCount() != e.Store().EdgeCount() {
		t.Error("annotation state mismatch")
	}
	if restored.Graph().Nodes() != e.Graph().Nodes() || restored.Graph().Edges() != e.Graph().Edges() {
		t.Error("ACG mismatch")
	}
	if restored.Profile().Total() != e.Profile().Total() {
		t.Errorf("profile %d != %d", restored.Profile().Total(), e.Profile().Total())
	}

	// The restored engine is fully operational: rediscovering the same
	// annotation works and finds the same candidates.
	origDisc, err := e.Discover(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	restDisc, err := restored.Discover(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(restDisc.Candidates) != len(origDisc.Candidates) {
		t.Errorf("rediscovery: %d vs %d candidates", len(restDisc.Candidates), len(origDisc.Candidates))
	}
}

func TestRestoreEngineErrors(t *testing.T) {
	// Garbage stream.
	if _, err := nebula.RestoreEngine(strings.NewReader("junk"), nil, nebula.DefaultOptions()); err == nil {
		t.Error("garbage stream accepted")
	}
	// configureMeta failure propagates.
	e, _ := engineFixture(t, nebula.DefaultOptions())
	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	bad := func(db *nebula.Database) (*nebula.MetaRepository, error) {
		repo := meta.NewRepository(db, nil)
		return repo, repo.AddConcept(&nebula.Concept{Name: "X", Table: "Missing", ReferencedBy: [][]string{{"A"}}})
	}
	if _, err := nebula.RestoreEngine(bytes.NewReader(buf.Bytes()), bad, nebula.DefaultOptions()); err == nil {
		t.Error("configureMeta error not propagated")
	}
}
