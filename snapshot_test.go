package nebula_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"nebula"
	"nebula/internal/meta"
	"nebula/internal/workload"
)

func TestEngineSnapshotRoundTrip(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	// Do some work so there is nontrivial state: process one annotation.
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[0]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Process(spec.Ann.ID); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	configure := func(db *nebula.Database) (*nebula.MetaRepository, error) {
		repo := nebula.NewMetaRepository(db, nil)
		for _, c := range []*nebula.Concept{
			{Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}}},
			{Name: "Protein", Table: "Protein", ReferencedBy: [][]string{{"PID"}, {"PName", "PType"}}},
		} {
			if err := repo.AddConcept(c); err != nil {
				return nil, err
			}
		}
		if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{5}`); err != nil {
			return nil, err
		}
		if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "Name"}, `[a-z]{3}[A-Z]`); err != nil {
			return nil, err
		}
		if err := repo.SetPattern(nebula.ColumnRef{Table: "Protein", Column: "PID"}, `P[0-9]{5}`); err != nil {
			return nil, err
		}
		return repo, nil
	}
	restored, err := nebula.RestoreEngine(bytes.NewReader(buf.Bytes()), configure, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// State carried over.
	if restored.DB().TotalRows() != e.DB().TotalRows() {
		t.Errorf("rows %d != %d", restored.DB().TotalRows(), e.DB().TotalRows())
	}
	if restored.Store().Len() != e.Store().Len() ||
		restored.Store().EdgeCount() != e.Store().EdgeCount() {
		t.Error("annotation state mismatch")
	}
	if restored.Graph().Nodes() != e.Graph().Nodes() || restored.Graph().Edges() != e.Graph().Edges() {
		t.Error("ACG mismatch")
	}
	if restored.Profile().Total() != e.Profile().Total() {
		t.Errorf("profile %d != %d", restored.Profile().Total(), e.Profile().Total())
	}
	// The pending expert queue is durable state: tasks and their VIDs
	// survive the round trip exactly.
	origTasks, restTasks := e.PendingTasks(), restored.PendingTasks()
	if len(restTasks) != len(origTasks) {
		t.Fatalf("pending tasks %d != %d", len(restTasks), len(origTasks))
	}
	for i, task := range origTasks {
		r := restTasks[i]
		if r.VID != task.VID || r.Annotation != task.Annotation || r.Tuple != task.Tuple || r.Confidence != task.Confidence {
			t.Errorf("pending task %d mismatch: %+v != %+v", i, r, task)
		}
	}

	// The restored engine is fully operational: rediscovering the same
	// annotation works and finds the same candidates.
	origDisc, err := e.Discover(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	restDisc, err := restored.Discover(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(restDisc.Candidates) != len(origDisc.Candidates) {
		t.Errorf("rediscovery: %d vs %d candidates", len(restDisc.Candidates), len(origDisc.Candidates))
	}
}

func TestRestoreEngineErrors(t *testing.T) {
	// Garbage stream.
	if _, err := nebula.RestoreEngine(strings.NewReader("junk"), nil, nebula.DefaultOptions()); err == nil {
		t.Error("garbage stream accepted")
	}
	// configureMeta failure propagates.
	e, _ := engineFixture(t, nebula.DefaultOptions())
	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	bad := func(db *nebula.Database) (*nebula.MetaRepository, error) {
		repo := meta.NewRepository(db, nil)
		return repo, repo.AddConcept(&nebula.Concept{Name: "X", Table: "Missing", ReferencedBy: [][]string{{"A"}}})
	}
	if _, err := nebula.RestoreEngine(bytes.NewReader(buf.Bytes()), bad, nebula.DefaultOptions()); err == nil {
		t.Error("configureMeta error not propagated")
	}
	// Stream truncated mid-section: every proper prefix of a valid snapshot
	// must be rejected, never half-restored. Step coarsely through the
	// prefix space plus the exact section boundaries near the end.
	valid := buf.Bytes()
	cuts := []int{1, len(valid) / 4, len(valid) / 2, 3 * len(valid) / 4, len(valid) - 1}
	for _, cut := range cuts {
		if _, err := nebula.RestoreEngine(bytes.NewReader(valid[:cut]), fixtureMeta, nebula.DefaultOptions()); err == nil {
			t.Errorf("truncated snapshot (%d/%d bytes) accepted", cut, len(valid))
		}
	}
}

// fixtureMeta rebuilds the NebulaMeta registrations for a restored
// engineFixture database (meta is configuration, not snapshot state).
func fixtureMeta(db *nebula.Database) (*nebula.MetaRepository, error) {
	return workload.BuildMeta(db, rand.New(rand.NewSource(11)))
}

// TestRestoreDuringConcurrentDiscover races snapshot capture + restore
// against live discovery on the source engine (run under -race via make
// check). SaveSnapshot must not hold the engine lock across encoding in a
// way that deadlocks or tears state, and every captured stream must
// restore to a fully operational engine.
func TestRestoreDuringConcurrentDiscover(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})
	if len(specs) < 2 {
		t.Fatal("fixture produced too few workload specs")
	}
	for _, spec := range specs[:2] {
		if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	discErr := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Discover(specs[i%2].Ann.ID); err != nil {
				discErr <- err
				return
			}
		}
	}()

	for round := 0; round < 8; round++ {
		var buf bytes.Buffer
		if err := e.SaveSnapshot(&buf); err != nil {
			t.Fatalf("round %d: snapshot under concurrent discover: %v", round, err)
		}
		restored, err := nebula.RestoreEngine(bytes.NewReader(buf.Bytes()), fixtureMeta, nebula.DefaultOptions())
		if err != nil {
			t.Fatalf("round %d: restore under concurrent discover: %v", round, err)
		}
		if _, err := restored.Discover(specs[0].Ann.ID); err != nil {
			t.Fatalf("round %d: restored engine cannot discover: %v", round, err)
		}
	}
	close(stop)
	<-done
	select {
	case err := <-discErr:
		t.Fatalf("concurrent discover failed: %v", err)
	default:
	}
}
