package nebula

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"nebula/internal/annotation"
	"nebula/internal/ingest"
	"nebula/internal/relational"
	"nebula/internal/trace"
)

// This file is the engine layer of the streaming proactive pipeline
// (internal/ingest): asynchronous discovery submission, change-data-capture
// over MutateDB/DeleteTuple, and the drain loop that turns queued jobs into
// attachments. The invariant the whole subsystem maintains: draining the
// queue produces byte-identical annotation state to running the same
// discoveries synchronously over the same database state — async changes
// WHEN discovery happens, never WHAT it produces.
//
// A drained job runs in three phases under the engine's write lock:
// retract (drop the annotation's machine-derived attachments, ACG edges,
// and pending tasks — manual Stage-0 attachments survive), discover (the
// standard pipeline over the current state, fanned across the worker pool
// exactly like ProcessBatch), and submit (sequential Stage-3 fold in drain
// order). Retraction is what makes re-discovery idempotent: a job drained
// twice — or re-drained after a crash between phases — converges to the
// same state.

// Typed ingest errors for errors.Is matching; serving layers map
// ErrIngestQueueFull to 429 + Retry-After (backpressure, not failure).
var (
	// ErrIngestDisabled reports an async entry point on an engine whose
	// Options.Ingest.Enabled is false.
	ErrIngestDisabled = errors.New("nebula: ingest disabled")
	// ErrIngestQueueFull reports a live enqueue rejected by the queue's
	// capacity bound; retry after a drain frees room.
	ErrIngestQueueFull = errors.New("nebula: ingest queue full")
)

// IngestJob re-exports the queued-job shape.
type IngestJob = ingest.Job

// ingestState is the engine's ingest bookkeeping. The queue and counters
// are guarded by the engine's lock group (whole-group writes for drains and
// CDC, whole-group reads for stats), exactly like the annotation store. The
// two enqueue entry points reachable under a single shard lock
// (EnqueueDiscovery, AddAnnotationAsync) additionally serialize on mu, so
// admissions homed on different shards cannot race the queue.
// captureActive/changed follow the WAL capture flags' discipline (only
// touched under the whole-group write lock — capture runs inside MutateDB).
type ingestState struct {
	// mu serializes single-shard enqueue paths against each other. Ordered
	// strictly after the shard lock in the hierarchy; whole-group paths
	// skip it (the group lock already excludes every shard holder).
	mu      sync.Mutex
	queue   *ingest.Queue
	cdcHops int

	// captureActive/changed implement MutateDB change capture: the row
	// hook records committed mutations while a wrapper has capture on, and
	// the wrapper converts them into re-discovery jobs before unlocking.
	// Replay and restore never activate capture — they apply the logged
	// OpIngestEnqueue records instead.
	captureActive bool
	changed       []relational.RowMutation

	// drain/freshness accumulators (write-locked updates, RLock reads).
	drains         uint64
	requeued       uint64
	skipped        uint64
	failed         uint64
	freshnessNanos int64
	freshnessJobs  uint64
}

// observe records one committed row mutation during an active capture.
func (s *ingestState) observe(m relational.RowMutation) {
	if s.captureActive {
		s.changed = append(s.changed, m)
	}
}

// beginCapture arms the row hook; endCapture disarms it and returns the
// mutations seen. Caller holds e.mu in write mode.
func (s *ingestState) beginCapture() {
	s.captureActive, s.changed = true, nil
}

func (s *ingestState) endCapture() []relational.RowMutation {
	out := s.changed
	s.captureActive, s.changed = false, nil
	return out
}

// refreshRowHook installs the engine's composite row-mutation observer:
// WAL capture of raw MutateDB operations and ingest change-data-capture
// share the database's single hook. Called whenever either consumer
// appears or disappears (construction, AttachWAL, CloseWAL); the caller
// holds e.mu in write mode or owns the engine exclusively.
func (e *Engine) refreshRowHook() {
	wb, ing, te := e.wal, e.ingest, e.tiered
	if wb == nil && ing == nil && te == nil {
		e.db.SetRowMutationHook(nil)
		return
	}
	e.db.SetRowMutationHook(func(m relational.RowMutation) {
		if wb != nil && wb.captureActive && wb.captureErr == nil {
			if _, err := wb.log.Append(rowMutationRecord(m)); err != nil {
				wb.captureErr = fmt.Errorf("nebula: wal append: %w", err)
			}
		}
		if ing != nil {
			ing.observe(m)
		}
		if te != nil {
			// Disk-mode search index: the mutated row is re-indexed into
			// the in-heap tail before the next probe. Fires on the WAL
			// replay path too, which is how rows replayed past the last
			// segment flush regain index coverage after a restart.
			te.MarkDirty(relational.TupleID{Table: m.Table, Key: m.Key})
		}
	})
}

// IngestEnabled reports whether the streaming ingest subsystem is on.
func (e *Engine) IngestEnabled() bool { return e.ingest != nil }

// IngestAdmission is what an accepted enqueue tells the caller about the
// queue, captured atomically with the admission itself (same critical
// section — never a post-hoc read another enqueue or drain could have
// moved). The embedded IngestJob carries the admitted shape.
type IngestAdmission struct {
	IngestJob
	// Position is the job's 1-based drain position at admission: 1 means
	// it drains next. Later enqueues and drains move it, but it was exact
	// when the admission was acknowledged — the 202 contract.
	Position int
	// Depth is the queue depth at admission, including this job.
	Depth int
	// Coalesced reports that the enqueue folded into an already-queued
	// job for the same annotation instead of admitting a new one.
	Coalesced bool
}

// EnqueueDiscovery queues an asynchronous Process run for a stored
// annotation — the submit-async path. The returned admission carries the
// job's sequence plus its queue position and depth as of the admission
// itself; the discovery happens on the next drain. A duplicate enqueue
// coalesces into the queued job (upgrading its priority); a full queue
// fails with ErrIngestQueueFull.
func (e *Engine) EnqueueDiscovery(id AnnotationID, priority int) (IngestAdmission, error) {
	var wb *walBinding
	adm, err := func() (IngestAdmission, error) {
		home := e.mu.Home(string(id))
		e.mu.LockShard(home)
		defer e.mu.UnlockShard(home)
		wb = e.wal
		if e.ingest == nil {
			return IngestAdmission{}, ErrIngestDisabled
		}
		// Admission holds only the home shard plus the ingest mutex: the
		// queue mutation serializes against enqueues homed elsewhere, while
		// drains and CDC hold the whole group and so exclude this path.
		e.ingest.mu.Lock()
		defer e.ingest.mu.Unlock()
		if _, ok := e.store.Get(id); !ok {
			return IngestAdmission{}, fmt.Errorf("%w %q", ErrUnknownAnnotation, id)
		}
		return e.enqueueJobLocked(id, ingest.KindDiscover, priority)
	}()
	err = wb.commit(err)
	return adm, err
}

// AddAnnotationAsync is AddAnnotation plus EnqueueDiscovery in one durable
// step: the annotation and its queued discovery become durable together,
// so a crash never leaves an acknowledged async submission without its
// job. With a full queue the whole call fails (nothing is stored) — the
// backpressure contract of the async path.
func (e *Engine) AddAnnotationAsync(a *Annotation, attachTo []TupleID, priority int) (IngestAdmission, error) {
	var wb *walBinding
	adm, err := func() (IngestAdmission, error) {
		home := e.mu.Home(string(a.ID))
		e.mu.LockShard(home)
		defer e.mu.UnlockShard(home)
		wb = e.wal
		if e.ingest == nil {
			return IngestAdmission{}, ErrIngestDisabled
		}
		// The ingest mutex spans the capacity pre-check through the enqueue:
		// the reserve-then-admit sequence must be atomic against enqueues
		// homed on other shards, or two concurrent async adds could both
		// pass the check against one free slot.
		e.ingest.mu.Lock()
		defer e.ingest.mu.Unlock()
		// Reserve queue room before any state changes: a full queue must
		// reject the submission outright, not store an orphan annotation.
		if cap := e.ingest.queue.Cap(); cap > 0 && e.ingest.queue.Len() >= cap {
			e.ingest.queue.NoteDrop()
			return IngestAdmission{}, fmt.Errorf("%w (annotation %q)", ErrIngestQueueFull, a.ID)
		}
		if err := e.walAppend(recAddAnnotation(a, attachTo)); err != nil {
			return IngestAdmission{}, err
		}
		if err := e.addAnnotation(a, attachTo); err != nil {
			return IngestAdmission{}, err
		}
		return e.enqueueJobLocked(a.ID, ingest.KindDiscover, priority)
	}()
	err = wb.commit(err)
	return adm, err
}

// enqueueJobLocked admits one job and logs its WAL record, returning the
// admission view (position, depth, coalesced) computed inside the same
// critical section. Caller holds either the whole lock group in write
// mode, or the job's home shard plus e.ingest.mu; ingest is enabled.
func (e *Engine) enqueueJobLocked(id AnnotationID, kind ingest.Kind, priority int) (IngestAdmission, error) {
	before := e.ingest.queue.Len()
	job, changed, err := e.ingest.queue.Enqueue(id, kind, priority, time.Now())
	if err != nil {
		return IngestAdmission{}, fmt.Errorf("%w (annotation %q)", ErrIngestQueueFull, id)
	}
	adm := IngestAdmission{
		IngestJob: job,
		Position:  e.ingest.queue.Position(id),
		Depth:     e.ingest.queue.Len(),
		Coalesced: e.ingest.queue.Len() == before,
	}
	// A no-op coalesce changes no durable state, so it logs nothing; an
	// upgrade re-logs the job's new shape under its original sequence.
	if changed {
		if err := e.walAppend(recIngestEnqueue(job)); err != nil {
			return adm, err
		}
	}
	return adm, nil
}

// enqueueAffectedLocked is the change-data-capture conversion: map the
// captured row mutations to seed tuples (the changed rows plus, for
// inserts, the rows the new row references by FK — the new row has no ACG
// node yet, but its FK targets anchor it to the graph), then re-queue every
// annotation attached within CDCHops of a seed. A full queue drops the
// re-discovery (counted; freshness degrades, correctness doesn't — the
// next mutation or an operator flush re-queues it) rather than failing the
// mutation that triggered it.
func (e *Engine) enqueueAffectedLocked(changed []relational.RowMutation) (int, error) {
	seen := make(map[TupleID]struct{}, len(changed))
	seeds := make([]TupleID, 0, len(changed))
	add := func(id TupleID) {
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			seeds = append(seeds, id)
		}
	}
	for _, m := range changed {
		add(TupleID{Table: m.Table, Key: m.Key})
		if m.Kind == relational.RowInsert {
			if row, ok := e.db.Lookup(TupleID{Table: m.Table, Key: m.Key}); ok {
				for _, rel := range e.db.Related(row) {
					add(rel.ID)
				}
			}
		}
	}
	affected := e.graph.AffectedAnnotations(seeds, e.ingest.cdcHops)
	for _, id := range affected {
		if _, err := e.enqueueJobLocked(id, ingest.KindRediscover, 0); err != nil {
			if errors.Is(err, ErrIngestQueueFull) {
				continue
			}
			return len(affected), err
		}
	}
	return len(affected), nil
}

// retractAnnotation removes an annotation's machine-derived state — every
// attachment outside its manual Stage-0 focal, the ACG edges those
// attachments implied, and its pending verification tasks — returning it
// to the state a fresh AddAnnotation would have produced. Shared between
// the drain loop and OpIngestRetract replay; caller holds e.mu in write
// mode. Retracting an already-retracted annotation is a no-op, which is
// what makes crash-interrupted drains converge.
func (e *Engine) retractAnnotation(id AnnotationID) {
	manual := make(map[TupleID]struct{}, len(e.manualFocal[id]))
	for _, t := range e.manualFocal[id] {
		manual[t] = struct{}{}
	}
	atts := e.store.Attachments(id, -1)
	tuples := make([]TupleID, 0, len(atts))
	for _, att := range atts {
		if _, keep := manual[att.Tuple]; keep && att.Type == annotation.TrueAttachment {
			continue
		}
		tuples = append(tuples, att.Tuple)
	}
	for _, t := range tuples {
		e.store.Detach(id, t)
		e.graph.RemoveAttachment(id, t)
	}
	e.manager.CancelTasksForAnnotation(id)
	e.bumpMutEpochFor(id)
}

// IngestDrainResult reports one DrainIngest call.
type IngestDrainResult struct {
	// Popped is how many jobs left the queue this drain.
	Popped int
	// Drained is how many completed (retract + discover + submit).
	Drained int
	// Requeued jobs were popped but put back (cancellation mid-drain).
	Requeued int
	// Skipped jobs referenced annotations deleted after enqueue.
	Skipped int
	// Failed jobs errored in discovery or submission (e.g. spam
	// quarantine); their retraction stands and they are not retried.
	Failed int
	// Trace is the drain's span tree when Options.Trace is on.
	Trace *TraceNode
}

// DrainIngest drains up to max queued jobs (max <= 0 drains everything
// currently queued) through the three-phase pipeline. Discovery fans out
// across Options.Parallelism workers over the post-retraction state, and
// Stage-3 submissions fold sequentially in drain order — the same
// deterministic schedule as ProcessBatch, so drained results are
// byte-identical whatever the worker count. On ctx cancellation, jobs
// whose discovery did not complete return to the queue with their original
// sequence numbers.
func (e *Engine) DrainIngest(ctx context.Context, max int) (res IngestDrainResult, err error) {
	defer recoverPanic(&err)
	var wb *walBinding
	res, err = func() (IngestDrainResult, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		wb = e.wal
		if e.ingest == nil {
			return IngestDrainResult{}, ErrIngestDisabled
		}
		return e.drainLocked(ctx, max)
	}()
	err = wb.commit(err)
	return res, err
}

// FlushIngest drains until the queue is empty (or ctx is done) — the
// graceful-shutdown and `nebulactl ingest-flush` path. Each round is one
// DrainIngest batch, so writers interleaving with the flush extend it
// rather than block behind one giant batch.
func (e *Engine) FlushIngest(ctx context.Context) (IngestDrainResult, error) {
	var total IngestDrainResult
	for {
		res, err := e.DrainIngest(ctx, 0)
		total.Popped += res.Popped
		total.Drained += res.Drained
		total.Requeued += res.Requeued
		total.Skipped += res.Skipped
		total.Failed += res.Failed
		if err != nil {
			return total, err
		}
		if res.Popped == 0 || res.Requeued > 0 {
			return total, ctx.Err()
		}
		if ctx.Err() != nil {
			return total, ctx.Err()
		}
	}
}

// drainLocked is the drain core. Caller holds e.mu in write mode with
// ingest enabled; the binding for commit was captured by the caller.
func (e *Engine) drainLocked(ctx context.Context, max int) (res IngestDrainResult, err error) {
	var root *trace.Span
	if e.opts.Trace {
		root = trace.New("ingest_drain")
		ctx = trace.WithSpan(ctx, root)
		defer func() {
			root.End()
			res.Trace = root.Snapshot()
		}()
	}
	jobs := e.ingest.queue.PopBatch(max)
	res.Popped = len(jobs)
	if len(jobs) == 0 {
		return res, nil
	}
	e.ingest.drains++

	// Phase 1 — retract, in drain order. Each retraction is logged before
	// it applies; a crash after some retractions re-queues the jobs on
	// replay (no OpIngestDone yet) and the re-drain's retractions no-op.
	type slot struct {
		job   IngestJob
		a     *Annotation
		focal []TupleID
		disc  *Discovery
		err   error
	}
	slots := make([]slot, 0, len(jobs))
	for _, job := range jobs {
		a, ok := e.store.Get(job.Annotation)
		if !ok {
			// Deleted after enqueue: nothing to do. Log completion so a
			// replayed queue does not resurrect the phantom job.
			if err := e.walAppend(recIngestDone(job.Annotation)); err != nil {
				return res, err
			}
			e.ingest.queue.NoteDone()
			res.Skipped++
			e.ingest.skipped++
			continue
		}
		if err := e.walAppend(recIngestRetract(job.Annotation)); err != nil {
			return res, err
		}
		e.retractAnnotation(job.Annotation)
		slots = append(slots, slot{job: job, a: a, focal: e.store.Focal(job.Annotation)})
	}

	// Phase 2 — discover over the post-retraction state, fanned across the
	// worker pool (the runBatch schedule: per-slot results, per-slot panic
	// recovery, atomic task handout).
	if e.opts.SearcherFactory == nil && e.opts.SearchTechnique == TechniqueSymbolTable {
		e.symbolSearcher(e.db)
	}
	workers := resolveWorkers(e.opts.Parallelism)
	started := make([]bool, len(slots))
	batchPool(ctx, len(slots), workers, func(i int) {
		started[i] = true
		defer func() {
			if r := recover(); r != nil {
				slots[i].err = fmt.Errorf("%w: panic: %v\n%s", ErrInternal, r, debug.Stack())
			}
		}()
		slots[i].disc, slots[i].err = e.discover(ctx, slots[i].a, slots[i].focal, e.opts)
	})

	// Phase 3 — submit sequentially in drain order; VIDs, ACG updates, and
	// task order follow the queue order deterministically. Cancelled or
	// never-started discoveries re-queue their jobs (the retraction stands;
	// the next drain redoes it as a no-op and re-discovers); other errors
	// (spam quarantine, internal) consume the job — retrying would fail
	// identically forever.
	var requeue []IngestJob
	// fail aborts the fold: jobs not folded yet go back to the queue (their
	// retractions are logged, so a later drain redoes them as no-ops).
	fail := func(from int, err error) (IngestDrainResult, error) {
		for _, s := range slots[from:] {
			requeue = append(requeue, s.job)
		}
		e.ingest.queue.Requeue(requeue)
		res.Requeued = len(requeue)
		e.ingest.requeued += uint64(len(requeue))
		return res, err
	}
	now := time.Now()
	for i := range slots {
		s := &slots[i]
		if !started[i] || errors.Is(s.err, ErrCancelled) || errors.Is(s.err, ErrBudgetExceeded) {
			requeue = append(requeue, s.job)
			continue
		}
		if s.err != nil {
			if err := e.walAppend(recIngestDone(s.job.Annotation)); err != nil {
				return fail(i, err)
			}
			e.ingest.queue.NoteDone()
			res.Failed++
			e.ingest.failed++
			continue
		}
		degraded := len(s.disc.Degraded()) > 0
		submit := e.manager.Submit
		if degraded {
			submit = e.manager.SubmitDegraded
		}
		if err := e.walAppend(recSubmit(s.job.Annotation, s.disc, degraded, e.manager.NextVID())); err != nil {
			return fail(i, err)
		}
		e.bumpMutEpochFor(s.job.Annotation)
		if _, err := submit(s.job.Annotation, s.disc.Focal, s.disc.Candidates); err != nil {
			return fail(i, err)
		}
		if err := e.walAppend(recIngestDone(s.job.Annotation)); err != nil {
			return fail(i+1, err)
		}
		e.ingest.queue.NoteDone()
		res.Drained++
		e.ingest.freshnessNanos += now.Sub(s.job.EnqueuedAt).Nanoseconds()
		e.ingest.freshnessJobs++
	}
	if len(requeue) > 0 {
		e.ingest.queue.Requeue(requeue)
		res.Requeued = len(requeue)
		e.ingest.requeued += uint64(len(requeue))
	}
	return res, nil
}

// IngestStats is the observability snapshot behind the nebula_ingest_*
// metrics and the queue-status endpoint.
type IngestStats struct {
	// Enabled mirrors Options.Ingest.Enabled.
	Enabled bool `json:"enabled"`
	// QueueDepth and QueueCap describe the queue right now.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// NextSeq is the sequence number the next admitted job will get.
	NextSeq uint64 `json:"next_seq"`
	// OldestWaitMS is the age of the oldest queued job — the queue lag.
	OldestWaitMS int64 `json:"oldest_wait_ms"`
	// Lifetime counters.
	Enqueued      uint64 `json:"enqueued"`
	Coalesced     uint64 `json:"coalesced"`
	Dropped       uint64 `json:"dropped"`
	Rediscoveries uint64 `json:"rediscoveries"`
	Done          uint64 `json:"done"`
	Drains        uint64 `json:"drains"`
	Requeued      uint64 `json:"requeued"`
	Skipped       uint64 `json:"skipped"`
	Failed        uint64 `json:"failed"`
	// FreshnessJobs and MeanFreshnessMS aggregate the enqueue→attached
	// latency over completed jobs.
	FreshnessJobs   uint64  `json:"freshness_jobs"`
	MeanFreshnessMS float64 `json:"mean_freshness_ms"`
}

// IngestStats returns a point-in-time snapshot of the ingest subsystem;
// the zero value (Enabled=false) when ingest is off.
func (e *Engine) IngestStats() IngestStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.ingest == nil {
		return IngestStats{}
	}
	q := e.ingest.queue
	c := q.Counters()
	s := IngestStats{
		Enabled:       true,
		QueueDepth:    q.Len(),
		QueueCap:      q.Cap(),
		NextSeq:       q.NextSeq(),
		Enqueued:      c.Enqueued,
		Coalesced:     c.Coalesced,
		Dropped:       c.Dropped,
		Rediscoveries: c.Rediscoveries,
		Done:          c.Done,
		Drains:        e.ingest.drains,
		Requeued:      e.ingest.requeued,
		Skipped:       e.ingest.skipped,
		Failed:        e.ingest.failed,
		FreshnessJobs: e.ingest.freshnessJobs,
	}
	if oldest, ok := q.OldestEnqueuedAt(); ok {
		s.OldestWaitMS = time.Since(oldest).Milliseconds()
	}
	if e.ingest.freshnessJobs > 0 {
		s.MeanFreshnessMS = float64(e.ingest.freshnessNanos) / float64(e.ingest.freshnessJobs) / 1e6
	}
	return s
}

// IngestJobs returns the queued jobs in drain order — the queue-status
// endpoint's listing.
func (e *Engine) IngestJobs() []IngestJob {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.ingest == nil {
		return nil
	}
	return e.ingest.queue.Jobs()
}
