# Convenience targets; the repository builds with the plain Go toolchain
# (stdlib only, no module downloads needed).

GO ?= go

.PHONY: all build test race cover bench experiments examples fmt vet check clean

all: build test

# Full pre-merge gate: static checks, build, race-enabled tests, and the
# fault-injection / governance smoke suite.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run 'Fault|Inject|Governor|Deadline|Cancel|Budget|Degraded|Retry|Panic|Truncat|BitFlip|SaveFile' ./internal/faultinject/ ./internal/snapshot/ .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt

experiments:
	$(GO) run ./cmd/nebulactl experiment --figure all --size small

experiments-large:
	$(GO) run ./cmd/nebulactl experiment --figure all --size large

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/biocuration
	$(GO) run ./examples/audit
	$(GO) run ./examples/propagation

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f bench_output.txt test_output.txt nebula-state.gob
