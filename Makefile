# Convenience targets; the repository builds with the plain Go toolchain
# (stdlib only, no module downloads needed).

GO ?= go

.PHONY: all build test race cover bench bench-parallel bench-plan bench-server bench-cache bench-trace bench-wal bench-stream bench-shard bench-store run-server experiments examples fmt fmt-check vet check clean

all: build test

# Full pre-merge gate: static checks, build, race-enabled tests, the
# fault-injection / governance smoke suite, the fuzz seed corpora, the
# parallel-determinism + trace byte-identity suites, and the WAL
# crash-recovery matrix (cut the log at every boundary and interior byte;
# the recovered engine must match the durable prefix exactly).
check:
	$(MAKE) fmt-check
	$(GO) vet ./...
	$(GO) vet ./cmd/...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run 'Fault|Inject|Governor|Deadline|Cancel|Budget|Degraded|Retry|Panic|Truncat|BitFlip|SaveFile' ./internal/faultinject/ ./internal/snapshot/ .
	$(GO) test -run Fuzz ./internal/sqlish/ ./internal/snapshot/ ./internal/wal/ ./internal/segment/
	$(GO) test -run 'Determinis|Cache|Trace|Unicode' ./internal/cache/ ./internal/keyword/ ./internal/relational/ ./internal/trace/ .
	$(GO) test -race -run 'WAL' ./internal/wal/ .
	$(GO) test -race -run 'Plan|Golden|Estimate' ./internal/discovery/ ./internal/keyword/ ./internal/meta/
	$(GO) test -race -run 'Ingest|Stream|Queue' ./internal/ingest/ ./internal/bench/ ./internal/server/ .
	$(GO) test -race -run 'Shard' ./internal/shard/ .
	$(GO) test -race -run 'Segment|Store|Tiered' ./internal/segment/ ./internal/keyword/ .
	$(MAKE) bench-stream
	$(MAKE) bench-shard
	$(MAKE) bench-store

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt
	$(MAKE) bench-parallel

# Sequential vs parallel keyword-batch execution; the JSON artifact records
# the measured speedups (bounded by GOMAXPROCS) and the byte-identity check.
bench-parallel:
	$(GO) run ./cmd/nebulactl bench-parallel --size large --workers 2,4,8 --rounds 3 --out BENCH_parallel.json

# Cost-based planner: exhaustive vs planned top-k discovery over the stock
# workload (where sound pruning is rarely possible — the row proves the
# planner never trades exactness for speed) and the identifier-dense
# reference workload (the planner's target class); the JSON artifact records
# prune counts, scan counts, the speedup, and the byte-identity check.
bench-plan:
	$(GO) run ./cmd/nebulactl bench-plan --size large --topk 10 --rounds 3 --out BENCH_plan.json

# Load-test the nebulad serving layer in-process: discovery round trips
# through the full HTTP stack at two client concurrency levels; the JSON
# artifact records throughput, p50/p99 latency, and shed requests.
bench-server:
	$(GO) run ./cmd/nebulactl bench-server --size tiny --levels 4,32 --requests 200 --out BENCH_server.json

# Measure the multi-level result cache: cold vs warm discovery sweeps at two
# dataset sizes; the JSON artifact records the speedup, hit rates, occupancy,
# and the byte-identity check against an uncached control engine.
bench-cache:
	$(GO) run ./cmd/nebulactl bench-cache --sizes small,mid --rounds 3 --out BENCH_cache.json

# Bound the observe-only tracing overhead: the same discovery sweep with
# tracing off and on; the JSON artifact records both timings, the overhead
# percentage, the span count, and the byte-identity check.
bench-trace:
	$(GO) run ./cmd/nebulactl bench-trace --size small --seed 42 --rounds 3 --out BENCH_trace.json

# Measure WAL mutation overhead: the same concurrent annotation-insert
# workload with no WAL, log-only, group commit, and fsync-per-append; the
# JSON artifact records per-op cost, overhead vs baseline, and the sync
# absorption that makes group commit cheaper than fsync-per-append.
bench-wal:
	$(GO) run ./cmd/nebulactl bench-wal --size tiny --seed 42 --writers 4 --mutations 400 --out BENCH_wal.json

# Measure the streaming ingest pipeline: async submission with interleaved
# drains, tuple mutations driving K-hop CDC re-discovery, and a convergence
# flush; the JSON artifact records queue counters, enqueue-to-attached
# freshness, and the byte-identity check against a synchronous from-scratch
# control engine. The grep enforces the identity contract on the artifact.
bench-stream:
	$(GO) run ./cmd/nebulactl bench-stream --size tiny --seed 42 --mutations 24 --drain-every 4 --out BENCH_stream.json
	grep -q '"identical": true' BENCH_stream.json

# Measure the hash-partitioned engine: a mixed write+discover workload at
# 1/2/4/8 shards (per-shard mutation locks and per-shard cache invalidation
# epochs) plus a sequential identity phase; the JSON artifact records
# throughput, cache hits, the speedup over the single-shard row, and the
# byte-identity check. The grep enforces the identity contract — and the
# command itself exits nonzero if any shard count diverges.
bench-shard:
	$(GO) run ./cmd/nebulactl bench-shard --size small --seed 42 --shards 1,2,4,8 --out BENCH_shard.json
	grep -q '"identical": true' BENCH_shard.json

# Disk-backed index substrate: restart from the same checkpoint in heap
# mode (deferred full re-index at first discovery) and disk mode (mmap'd
# segment files adopted via the snapshot-paired manifest), measuring time
# to first answer and resident heap; the JSON artifact records both rows.
# The grep enforces the identity contract — the post-restart discovery
# sweep must be byte-identical across substrates — and the command itself
# exits nonzero on divergence.
bench-store:
	$(GO) run ./cmd/nebulactl bench-store --size small --seed 42 --out BENCH_store.json
	grep -q '"identical": true' BENCH_store.json

# Serving smoke test: boot nebulad on an ephemeral port, hit /healthz, run
# one discovery round trip, SIGTERM it, and verify the drain snapshot
# reloads — all self-driven by the daemon's --smoke mode.
run-server:
	$(GO) run ./cmd/nebulad --smoke

experiments:
	$(GO) run ./cmd/nebulactl experiment --figure all --size small

experiments-large:
	$(GO) run ./cmd/nebulactl experiment --figure all --size large

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/biocuration
	$(GO) run ./examples/audit
	$(GO) run ./examples/propagation

fmt:
	gofmt -w .

# Fail if any file needs reformatting (gofmt -l prints offenders; the test
# fails the target when the list is non-empty).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

clean:
	rm -f bench_output.txt test_output.txt nebula-state.gob
