package nebula_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"nebula"
	"nebula/internal/workload"
)

// detEngine builds a fresh engine over a freshly generated (deterministic)
// dataset, with the given parallelism. Each parallelism level gets its own
// dataset because Process mutates engine state; generation is seeded, so
// the starting states are identical.
func detEngine(t *testing.T, parallelism int, budget nebula.Budget, sharedExec bool) (*nebula.Engine, []*workload.AnnotationSpec) {
	t.Helper()
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.8}
	opts.Parallelism = parallelism
	opts.Budget = budget
	opts.SharedExecution = sharedExec
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	specs := ds.Workload
	if len(specs) < 6 {
		t.Fatalf("fixture too small: %d workload annotations", len(specs))
	}
	specs = specs[:6]
	for _, spec := range specs {
		if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			t.Fatal(err)
		}
	}
	return e, specs
}

// renderBatchResults folds batch output into one canonical string:
// candidates with confidences and evidence, outcomes, degradations, and
// errors — everything except the scheduling-only stats fields.
func renderBatchResults(results []nebula.BatchResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%s err=%v\n", r.ID, r.Err)
		if r.Discovery == nil {
			continue
		}
		for _, c := range r.Discovery.Candidates {
			fmt.Fprintf(&b, "  cand %v conf=%.9f ev=%v\n", c.Tuple.ID, c.Confidence, c.Evidence)
		}
		fmt.Fprintf(&b, "  degraded=%v queries=%d\n", r.Discovery.Degraded(), len(r.Discovery.Queries))
		for _, a := range r.Outcome.Accepted {
			fmt.Fprintf(&b, "  accepted %v v%d\n", a.Tuple, a.VID)
		}
		for _, p := range r.Outcome.Pending {
			fmt.Fprintf(&b, "  pending %v v%d\n", p.Tuple, p.VID)
		}
		for _, rj := range r.Outcome.Rejected {
			fmt.Fprintf(&b, "  rejected %v v%d\n", rj.Tuple, rj.VID)
		}
	}
	return b.String()
}

func detParallelisms() []int {
	ps := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		ps = append(ps, n)
	} else {
		ps = append(ps, 8)
	}
	return ps
}

// TestDiscoverBatchDeterministicAcrossParallelism checks that DiscoverBatch
// output — candidates, confidences, evidence, degradations — is identical
// at parallelism 1, 2, and NumCPU, with shared execution both on and off.
func TestDiscoverBatchDeterministicAcrossParallelism(t *testing.T) {
	for _, sharedExec := range []bool{false, true} {
		var base string
		for _, p := range detParallelisms() {
			e, specs := detEngine(t, p, nebula.Budget{}, sharedExec)
			ids := make([]nebula.AnnotationID, len(specs))
			for i, s := range specs {
				ids[i] = s.Ann.ID
			}
			results := e.DiscoverBatch(ids)
			got := renderBatchResults(results)
			if p == 1 {
				base = got
				continue
			}
			if got != base {
				t.Errorf("shared=%v parallelism=%d: DiscoverBatch output diverged\n--- p=1\n%s--- p=%d\n%s",
					sharedExec, p, base, p, got)
			}
		}
	}
}

// TestProcessBatchDeterministicAcrossParallelism checks the stronger
// property: the full pipeline — including Stage-3 VID assignment, routing,
// and the resulting pending queue — is identical at every parallelism.
func TestProcessBatchDeterministicAcrossParallelism(t *testing.T) {
	var base, basePending string
	for _, p := range detParallelisms() {
		e, specs := detEngine(t, p, nebula.Budget{}, true)
		ids := make([]nebula.AnnotationID, len(specs))
		for i, s := range specs {
			ids[i] = s.Ann.ID
		}
		results := e.ProcessBatch(ids)
		got := renderBatchResults(results)
		var pb strings.Builder
		for _, task := range e.PendingTasks() {
			fmt.Fprintf(&pb, "v%d %s %v %.9f\n", task.VID, task.Annotation, task.Tuple, task.Confidence)
		}
		gotPending := pb.String()
		if p == 1 {
			base, basePending = got, gotPending
			continue
		}
		if got != base {
			t.Errorf("parallelism=%d: ProcessBatch output diverged", p)
		}
		if gotPending != basePending {
			t.Errorf("parallelism=%d: pending verification queue diverged\n--- p=1\n%s--- p=%d\n%s",
				p, basePending, p, gotPending)
		}
	}
}

// TestDiscoverBatchDeterministicUnderBudget checks determinism when the
// scan budget truncates discovery: identical partial candidates and
// identical Degraded reasons at every parallelism.
func TestDiscoverBatchDeterministicUnderBudget(t *testing.T) {
	// Unshared execution: the scan budget is checked before every keyword
	// query, so a 40-row budget truncates after the first (the shared path
	// checks between 16-fingerprint chunks, which the tiny dataset's
	// batches never fill).
	budget := nebula.Budget{MaxSearchedRows: 40}
	var base string
	truncated := false
	for _, p := range detParallelisms() {
		e, specs := detEngine(t, p, budget, false)
		ids := make([]nebula.AnnotationID, len(specs))
		for i, s := range specs {
			ids[i] = s.Ann.ID
		}
		results := e.DiscoverBatch(ids)
		for _, r := range results {
			if r.Discovery != nil && len(r.Discovery.Degraded()) > 0 {
				truncated = true
			}
		}
		got := renderBatchResults(results)
		if p == 1 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("parallelism=%d: budget-truncated output diverged\n--- p=1\n%s--- p=%d\n%s",
				p, base, p, got)
		}
	}
	if !truncated {
		t.Error("budget never truncated a run; the test exercises nothing")
	}
}

// TestBatchMatchesSequentialCalls checks that DiscoverBatch agrees with a
// loop of individual Discover calls — the batch API must be a scheduling
// optimization, not a semantic change.
func TestBatchMatchesSequentialCalls(t *testing.T) {
	e, specs := detEngine(t, 4, nebula.Budget{}, true)
	ids := make([]nebula.AnnotationID, len(specs))
	for i, s := range specs {
		ids[i] = s.Ann.ID
	}
	batch := e.DiscoverBatch(ids)
	for i, id := range ids {
		d, err := e.Discover(id)
		if err != nil {
			t.Fatalf("Discover(%s): %v", id, err)
		}
		single := renderBatchResults([]nebula.BatchResult{{ID: id, Discovery: d}})
		viaBatch := renderBatchResults([]nebula.BatchResult{{ID: id, Discovery: batch[i].Discovery, Err: batch[i].Err}})
		if single != viaBatch {
			t.Errorf("annotation %s: batch result differs from sequential Discover\n--- single\n%s--- batch\n%s",
				id, single, viaBatch)
		}
	}
}

// TestDiscoverBatchUnknownAnnotation checks per-slot failure isolation: an
// unknown ID fails its own slot and leaves its batch-mates untouched.
func TestDiscoverBatchUnknownAnnotation(t *testing.T) {
	e, specs := detEngine(t, 4, nebula.Budget{}, true)
	ids := []nebula.AnnotationID{specs[0].Ann.ID, "no-such-annotation", specs[1].Ann.ID}
	results := e.DiscoverBatch(ids)
	if results[1].Err == nil {
		t.Error("unknown annotation did not error")
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("valid slots poisoned: %v / %v", results[0].Err, results[2].Err)
	}
	if results[0].Discovery == nil || results[2].Discovery == nil {
		t.Error("valid slots missing discoveries")
	}
}
