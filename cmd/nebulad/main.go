// Command nebulad serves a nebula engine over HTTP/JSON: the network face
// of the proactive annotation pipeline. It generates a deterministic §8.1
// dataset (or restores a previous snapshot of one), then exposes the full
// annotation lifecycle — insert, discover, naive baseline, batch, process,
// pending-verification review, accept/reject, snapshot save/load — behind
// the internal/server admission gate, with /healthz and /metrics for
// operators. SIGINT/SIGTERM triggers a graceful drain: accepted requests
// finish, new ones get 503, and the engine state is persisted as a
// checksummed snapshot before exit.
//
// Usage:
//
//	nebulad [--host 127.0.0.1] [--port 8080] [--size tiny] [--seed 42]
//	        [--parallelism N] [--cache on|off|bytes] [--plan] [--topk K]
//	        [--max-inflight N] [--queue-depth N] [--max-per-conn N]
//	        [--request-timeout D] [--drain-timeout D] [--snapshot FILE]
//	        [--wal DIR] [--wal-sync group|always|none] [--slow-request D]
//	        [--ingest] [--ingest-queue-cap N] [--ingest-hops K]
//	        [--ingest-drain-every D] [--debug-addr HOST:PORT] [--smoke]
//
// --plan enables the cost-based query planner for every discovery the
// daemon serves (requires --topk K > 0); per-request PLAN ON|OFF and
// TOPK <k> overrides still apply. The planner's top-k output is
// byte-identical to the exhaustive run's.
//
// --wal DIR arms crash durability: every mutation is appended to a
// CRC-framed write-ahead log and fsynced (group commit by default) before
// the client sees success. On boot the daemon restores the snapshot (if
// any), replays the log's durable suffix — discarding a torn tail from a
// crash mid-append — and, when --snapshot is also set, immediately
// checkpoints so the replayed history is folded and the log truncated.
// The drain snapshot likewise becomes a checkpoint.
//
// --ingest arms the streaming proactive pipeline: POST /v1/annotations/async
// queues discovery instead of running it inline (202 with the queue
// position; 429 + Retry-After when the queue is full), tuple mutations
// re-queue exactly the annotations attached within --ingest-hops of the
// changed rows, and --ingest-drain-every runs a background drain at that
// cadence (0 leaves draining to POST /v1/ingest/flush). SIGTERM flushes the
// queue before the drain snapshot so async submissions leave as
// attachments.
//
// --slow-request D arms the structured slow-request log: any request at or
// over D is logged at Warn with its request-scoped span tree. --debug-addr
// starts a second listener (keep it loopback-only) serving net/http/pprof,
// isolated from the public API so profiling endpoints are never exposed by
// default.
//
// With --smoke, nebulad starts on an ephemeral port, performs one health
// check and one discovery round trip against itself, sends itself SIGTERM,
// verifies the drain snapshot reloads, and exits — a self-contained serving
// smoke test for `make run-server`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"nebula"
	"nebula/internal/bench"
	"nebula/internal/flagcheck"
	"nebula/internal/server"
	"nebula/internal/wal"
	"nebula/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "nebulad: %v\n", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	host           string
	port           int
	size           string
	seed           int64
	parallelism    int
	cache          string
	plan           bool
	topK           int
	maxInFlight    int
	queueDepth     int
	maxPerConn     int
	requestTimeout time.Duration
	drainTimeout   time.Duration
	snapshotPath   string
	walDir         string
	walSync        string
	storeDir       string
	storeMaxSegs   int
	slowRequest    time.Duration
	ingest         bool
	ingestQueueCap int
	ingestHops     int
	ingestEvery    time.Duration
	shards         int
	debugAddr      string
	smoke          bool
}

// parseSyncMode maps the --wal-sync flag to a wal.SyncMode.
func parseSyncMode(s string) (wal.SyncMode, error) {
	switch s {
	case "group", "":
		return wal.SyncGroup, nil
	case "always":
		return wal.SyncAlways, nil
	case "none":
		return wal.SyncNone, nil
	default:
		return 0, fmt.Errorf("--wal-sync: unknown mode %q (want group, always, or none)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nebulad", flag.ExitOnError)
	var cfg daemonConfig
	fs.StringVar(&cfg.host, "host", "127.0.0.1", "listen address")
	fs.IntVar(&cfg.port, "port", 8080, "listen port (0 = OS-assigned ephemeral port)")
	fs.StringVar(&cfg.size, "size", "tiny", "dataset size: tiny|small|mid|large")
	fs.Int64Var(&cfg.seed, "seed", 42, "dataset generator seed")
	fs.IntVar(&cfg.parallelism, "parallelism", 0, "engine worker pool size (0 = NumCPU, 1 = sequential)")
	fs.StringVar(&cfg.cache, "cache", "", "result caching: on, off, or a byte budget (default on at 64 MiB)")
	fs.BoolVar(&cfg.plan, "plan", false, "enable the cost-based query planner for every discovery (requires --topk)")
	fs.IntVar(&cfg.topK, "topk", 0, "keep only the strongest K attachments per discovery (0 = all; the K the planner maintains)")
	fs.IntVar(&cfg.maxInFlight, "max-inflight", 8, "requests executing concurrently (0 = default)")
	fs.IntVar(&cfg.queueDepth, "queue-depth", 64, "requests waiting for a slot before 429 (0 = default)")
	fs.IntVar(&cfg.maxPerConn, "max-per-conn", 0, "per-connection in-flight ceiling (0 = none)")
	fs.DurationVar(&cfg.requestTimeout, "request-timeout", 0, "per-request wall-clock cap (0 = none)")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful drain deadline on shutdown")
	fs.StringVar(&cfg.snapshotPath, "snapshot", "", "snapshot file: restored on boot when present, written on drain")
	fs.StringVar(&cfg.walDir, "wal", "", "write-ahead log directory: replayed on boot, then every mutation is logged and fsynced before it is acknowledged")
	fs.StringVar(&cfg.walSync, "wal-sync", "group", "WAL fsync policy: group (batched), always (per append), none (OS flush only)")
	fs.StringVar(&cfg.storeDir, "store-dir", "", "disk-backed search index directory: mmap'd segment files flushed at checkpoints (selects the symbol-table search technique)")
	fs.IntVar(&cfg.storeMaxSegs, "store-max-segments", 0, "segment files before background compaction merges the oldest (0 = default 8)")
	fs.DurationVar(&cfg.slowRequest, "slow-request", 0, "log requests at or over this duration at Warn with their span tree (0 = off)")
	fs.BoolVar(&cfg.ingest, "ingest", false, "enable the streaming ingest pipeline (async submits + change-driven re-discovery)")
	fs.IntVar(&cfg.ingestQueueCap, "ingest-queue-cap", 0, "queued discovery jobs before async submits get 429 (0 = default 1024)")
	fs.IntVar(&cfg.ingestHops, "ingest-hops", 0, "ACG neighborhood radius for change-driven re-discovery (0 = default 1)")
	fs.DurationVar(&cfg.ingestEvery, "ingest-drain-every", time.Second, "background drain cadence for queued jobs (0 = manual flush only)")
	fs.IntVar(&cfg.shards, "shards", 0, "hash-partition the engine's annotation state across N lock shards (0 or 1 = single shard; results are identical at any count)")
	fs.StringVar(&cfg.debugAddr, "debug-addr", "", "serve net/http/pprof on this extra listener (empty = off; keep it loopback-only)")
	fs.BoolVar(&cfg.smoke, "smoke", false, "self-check serving round trip, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.All(
		flagcheck.Port("port", cfg.port, true),
		flagcheck.NonNegative("parallelism", cfg.parallelism),
		flagcheck.NonNegative("topk", cfg.topK),
		flagcheck.NonNegative("max-inflight", cfg.maxInFlight),
		flagcheck.NonNegative("queue-depth", cfg.queueDepth),
		flagcheck.NonNegative("max-per-conn", cfg.maxPerConn),
		flagcheck.NonNegativeDuration("request-timeout", cfg.requestTimeout),
		flagcheck.NonNegativeDuration("drain-timeout", cfg.drainTimeout),
		flagcheck.NonNegativeDuration("slow-request", cfg.slowRequest),
		flagcheck.NonNegative("ingest-queue-cap", cfg.ingestQueueCap),
		flagcheck.NonNegative("ingest-hops", cfg.ingestHops),
		flagcheck.NonNegativeDuration("ingest-drain-every", cfg.ingestEvery),
		flagcheck.NonNegative("shards", cfg.shards),
		flagcheck.NonNegative("store-max-segments", cfg.storeMaxSegs),
	); err != nil {
		return err
	}
	if cfg.storeMaxSegs > 0 && cfg.storeDir == "" {
		return errors.New("--store-max-segments requires --store-dir")
	}
	if cfg.plan && cfg.topK <= 0 {
		return errors.New("--plan requires --topk K > 0 (the k the planner's early termination maintains)")
	}
	if cfg.smoke {
		return smoke(cfg)
	}
	return serve(cfg, nil)
}

// buildEngine prepares the served engine: a fresh deterministic dataset, or
// — when the snapshot file exists — the state persisted by a previous
// drain, with NebulaMeta re-registered against the restored database.
func buildEngine(cfg daemonConfig) (*nebula.Engine, func(*nebula.Database) (*nebula.MetaRepository, error), error) {
	opts := nebula.DefaultOptions()
	opts.Parallelism = cfg.parallelism
	opts.Plan = cfg.plan
	opts.TopK = cfg.topK
	cacheCfg, err := nebula.ParseCacheConfig(cfg.cache)
	if err != nil {
		return nil, nil, err
	}
	opts.Cache = cacheCfg
	opts.Shards = cfg.shards
	if cfg.storeDir != "" {
		// The disk substrate backs the symbol-table technique's pre-built
		// index, so the flag selects that technique; segments flush at
		// checkpoints and map back in on restart instead of rebuilding.
		opts.Store = nebula.StoreConfig{Dir: cfg.storeDir, MaxSegments: cfg.storeMaxSegs}
		opts.SearchTechnique = nebula.TechniqueSymbolTable
	}
	if cfg.ingest {
		opts.Ingest = nebula.IngestConfig{
			Enabled:  true,
			QueueCap: cfg.ingestQueueCap,
			CDCHops:  cfg.ingestHops,
		}
	}
	configureMeta := func(db *nebula.Database) (*nebula.MetaRepository, error) {
		// The repository is configuration, not snapshot state; rebuild the
		// §8.1 registration deterministically from the seed.
		return workload.BuildMeta(db, rand.New(rand.NewSource(cfg.seed)))
	}
	if cfg.snapshotPath != "" {
		if f, err := os.Open(cfg.snapshotPath); err == nil {
			defer f.Close()
			engine, err := nebula.RestoreEngine(f, configureMeta, opts)
			if err != nil {
				return nil, nil, fmt.Errorf("restore %s: %w", cfg.snapshotPath, err)
			}
			log.Printf("nebulad: restored snapshot %s (%d annotations, %d tuples)",
				cfg.snapshotPath, engine.Store().Len(), engine.DB().TotalRows())
			return engine, configureMeta, nil
		}
	}
	env, err := bench.LoadEnv(cfg.size, cfg.seed)
	if err != nil {
		return nil, nil, err
	}
	ds := env.Dataset
	engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		return nil, nil, err
	}
	log.Printf("nebulad: generated dataset %s seed=%d (%d annotations, %d tuples)",
		env.Name, cfg.seed, engine.Store().Len(), engine.DB().TotalRows())
	return engine, configureMeta, nil
}

// attachWAL completes the boot sequence for a WAL-enabled daemon: replay
// the durable suffix the previous process left behind (the snapshot's
// recorded boundary keeps folded segments from double-applying), attach
// a fresh segment for this process's mutations, and — when a snapshot
// path is configured — immediately checkpoint, folding the replayed
// history into the snapshot and truncating the log behind it.
func attachWAL(engine *nebula.Engine, cfg daemonConfig) error {
	mode, err := parseSyncMode(cfg.walSync)
	if err != nil {
		return err
	}
	stats, err := engine.RecoverWAL(cfg.walDir, wal.Options{Sync: mode})
	if err != nil {
		return fmt.Errorf("wal recovery: %w", err)
	}
	if stats.CorruptTail {
		log.Printf("nebulad: wal replay discarded a torn tail (%d bytes) — expected after a crash mid-append",
			stats.DiscardedBytes)
	}
	log.Printf("nebulad: wal %s replayed %d records from %d segments in %v (sync=%s)",
		cfg.walDir, stats.Records, stats.Segments, stats.Duration.Round(time.Millisecond), mode)
	if cfg.snapshotPath != "" && (stats.Records > 0 || stats.Segments > 0) {
		if err := engine.Checkpoint(cfg.snapshotPath); err != nil {
			return fmt.Errorf("boot checkpoint: %w", err)
		}
		log.Printf("nebulad: boot checkpoint folded replayed history into %s", cfg.snapshotPath)
	}
	return nil
}

// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully. When
// ready is non-nil it receives the bound address once the listener is up
// (used by smoke mode).
func serve(cfg daemonConfig, ready chan<- string) error {
	engine, configureMeta, err := buildEngine(cfg)
	if err != nil {
		return err
	}
	if cfg.walDir != "" {
		if err := attachWAL(engine, cfg); err != nil {
			return err
		}
	}
	srv, err := server.New(server.Config{
		Engine:               engine,
		MaxInFlight:          cfg.maxInFlight,
		QueueDepth:           cfg.queueDepth,
		MaxPerConn:           cfg.maxPerConn,
		RequestTimeout:       cfg.requestTimeout,
		SnapshotPath:         cfg.snapshotPath,
		ConfigureMeta:        configureMeta,
		SlowRequestThreshold: cfg.slowRequest,
	})
	if err != nil {
		return err
	}

	if cfg.debugAddr != "" {
		// The pprof listener is deliberately a separate mux on a separate
		// port: the public API mux never learns the /debug routes, so
		// profiling cannot be reached through the serving address.
		debugLn, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer debugLn.Close()
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("nebulad: pprof on http://%s/debug/pprof/", debugLn.Addr())
		go http.Serve(debugLn, debugMux)
	}

	addr := net.JoinHostPort(cfg.host, fmt.Sprint(cfg.port))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("nebulad: serving on http://%s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// The background drainer turns queued async submissions into attachments
	// at a steady cadence, so freshness does not depend on operators calling
	// /v1/ingest/flush. Stopped before Shutdown, whose final flush empties
	// whatever the last tick left behind.
	var stopDrainer context.CancelFunc
	if cfg.ingest && cfg.ingestEvery > 0 {
		drainerCtx, cancel := context.WithCancel(context.Background())
		defer cancel()
		stopDrainer = cancel
		go func() {
			t := time.NewTicker(cfg.ingestEvery)
			defer t.Stop()
			for {
				select {
				case <-drainerCtx.Done():
					return
				case <-t.C:
					if _, err := srv.Engine().DrainIngest(drainerCtx, 0); err != nil && !errors.Is(err, context.Canceled) {
						log.Printf("nebulad: ingest drain: %v", err)
					}
				}
			}
		}()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("nebulad: %v received, draining (timeout %v)", sig, cfg.drainTimeout)
	case err := <-serveErr:
		return err
	}

	// Drain order matters: flip the admission gate first so in-flight work
	// finishes and late arrivals get typed 503s while the listener is still
	// up, persist the snapshot, then close the listener.
	if stopDrainer != nil {
		stopDrainer()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	if cfg.walDir != "" {
		// The drain snapshot (if configured) was a checkpoint, so the log
		// is already truncated behind it; close flushes and seals the
		// active segment for the next boot's replay.
		if err := engine.CloseWAL(); err != nil {
			return fmt.Errorf("wal close: %w", err)
		}
	}
	if cfg.storeDir != "" {
		// After the final drain snapshot flushed the tail; close waits
		// for background compaction and unmaps the segments.
		if err := engine.CloseStore(); err != nil {
			return fmt.Errorf("store close: %w", err)
		}
	}
	log.Printf("nebulad: shutdown complete")
	return nil
}

// smoke is the self-check mode behind `make run-server`: boot on an
// ephemeral port, exercise one health check and one discovery round trip,
// SIGTERM ourselves, and verify the drain snapshot reloads.
func smoke(cfg daemonConfig) error {
	cfg.port = 0
	if cfg.snapshotPath == "" {
		dir, err := os.MkdirTemp("", "nebulad-smoke")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.snapshotPath = filepath.Join(dir, "smoke.snapshot")
	}

	ready := make(chan string, 1)
	served := make(chan error, 1)
	go func() { served <- serve(cfg, ready) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-served:
		return fmt.Errorf("smoke: server exited before listening: %w", err)
	}

	if err := smokeRoundTrip(cfg, base); err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return fmt.Errorf("smoke: signal self: %w", err)
	}
	select {
	case err := <-served:
		if err != nil {
			return fmt.Errorf("smoke: drain: %w", err)
		}
	case <-time.After(2 * cfg.drainTimeout):
		return errors.New("smoke: drain did not complete")
	}

	// The drain must have produced a loadable snapshot.
	f, err := os.Open(cfg.snapshotPath)
	if err != nil {
		return fmt.Errorf("smoke: drain snapshot missing: %w", err)
	}
	defer f.Close()
	restored, err := nebula.RestoreEngine(f, func(db *nebula.Database) (*nebula.MetaRepository, error) {
		return workload.BuildMeta(db, rand.New(rand.NewSource(cfg.seed)))
	}, nebula.DefaultOptions())
	if err != nil {
		return fmt.Errorf("smoke: drain snapshot corrupt: %w", err)
	}
	fmt.Printf("smoke ok: healthz + discovery round trip + graceful drain; snapshot reloads (%d annotations, %d tuples)\n",
		restored.Store().Len(), restored.DB().TotalRows())
	return nil
}

// smokeRoundTrip drives the serving API once: health check, then a full
// discovery for a workload annotation inserted over the wire.
func smokeRoundTrip(cfg daemonConfig, base string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	env, err := bench.LoadEnv(cfg.size, cfg.seed)
	if err != nil {
		return err
	}
	spec := env.Dataset.Workload[0]
	focal := make([]string, 0, 1)
	for _, t := range spec.Focal(1) {
		focal = append(focal, t.String())
	}
	add := map[string]any{"id": string(spec.Ann.ID) + "-smoke", "body": spec.Ann.Body, "attach_to": focal}
	if err := postJSON(client, base+"/v1/annotations", add, http.StatusCreated, nil); err != nil {
		return fmt.Errorf("add annotation: %w", err)
	}
	var disc struct {
		Candidates []json.RawMessage `json:"candidates"`
		Error      string            `json:"error"`
	}
	discover := map[string]any{"id": string(spec.Ann.ID) + "-smoke"}
	if err := postJSON(client, base+"/v1/discover", discover, http.StatusOK, &disc); err != nil {
		return fmt.Errorf("discover: %w", err)
	}
	if disc.Error != "" {
		return fmt.Errorf("discover: degraded to error %q", disc.Error)
	}
	log.Printf("nebulad: smoke discovery returned %d candidates", len(disc.Candidates))
	return nil
}

// postJSON posts a JSON body and decodes the response, enforcing the
// expected status.
func postJSON(client *http.Client, url string, body any, wantStatus int, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", strings.NewReader(string(payload)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}
