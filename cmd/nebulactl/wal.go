package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"nebula"
	"nebula/internal/bench"
	"nebula/internal/flagcheck"
	"nebula/internal/wal"
	"nebula/internal/workload"
)

// cmdWALInfo inspects a write-ahead log directory without applying
// anything: per-segment record and byte counts, and whether the final
// segment carries a torn tail (the expected signature of a crash
// mid-append, discarded at replay).
func cmdWALInfo(args []string) error {
	fs := flag.NewFlagSet("wal-info", flag.ExitOnError)
	dir := fs.String("wal", "", "write-ahead log directory to inspect")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("wal-info: --wal DIR is required")
	}
	infos, err := wal.Inspect(*dir, nil)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(infos)
	}
	if len(infos) == 0 {
		fmt.Printf("%s: empty log (no segments)\n", *dir)
		return nil
	}
	var records int
	var bytes int64
	for _, info := range infos {
		records += info.Records
		bytes += info.Bytes
		tail := ""
		if info.CorruptTail {
			tail = "  TORN TAIL (discarded at replay)"
		}
		fmt.Printf("  segment %d: %6d records %10d bytes%s\n", info.Segment, info.Records, info.Bytes, tail)
	}
	fmt.Printf("%s: %d segments, %d records, %d bytes\n", *dir, len(infos), records, bytes)
	return nil
}

// cmdCheckpoint folds a WAL's durable history into a snapshot offline —
// the operator recovery path when a daemon died and its log should be
// compacted before the next boot. The starting state is the existing
// snapshot when present (its recorded boundary skips already-folded
// segments), otherwise the deterministic generated dataset; the WAL
// suffix is replayed on top, the folded snapshot written, and the
// covered segments pruned. Run it only while no daemon holds the log.
func cmdCheckpoint(args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ExitOnError)
	dir := fs.String("wal", "", "write-ahead log directory to fold and truncate")
	snapPath := fs.String("snapshot", "", "snapshot file: starting state when present, rewritten with the folded state")
	size := fs.String("size", "tiny", "dataset size the daemon served: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "dataset generator seed the daemon used")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *snapPath == "" {
		return fmt.Errorf("checkpoint: --wal DIR and --snapshot FILE are required")
	}
	configureMeta := func(db *nebula.Database) (*nebula.MetaRepository, error) {
		return workload.BuildMeta(db, rand.New(rand.NewSource(*seed)))
	}

	var engine *nebula.Engine
	if f, err := os.Open(*snapPath); err == nil {
		engine, err = nebula.RestoreEngine(f, configureMeta, nebula.DefaultOptions())
		f.Close()
		if err != nil {
			return fmt.Errorf("restore %s: %w", *snapPath, err)
		}
		fmt.Printf("restored %s (%d annotations, %d tuples)\n",
			*snapPath, engine.Store().Len(), engine.DB().TotalRows())
	} else {
		env, err := bench.FreshEnv(*size, *seed)
		if err != nil {
			return err
		}
		ds := env.Dataset
		engine, err = nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, nebula.DefaultOptions())
		if err != nil {
			return err
		}
		fmt.Printf("no snapshot at %s; starting from generated dataset %s seed=%d\n", *snapPath, *size, *seed)
	}

	stats, err := engine.RecoverWAL(*dir, wal.Options{})
	if err != nil {
		return fmt.Errorf("wal recovery: %w", err)
	}
	if stats.CorruptTail {
		fmt.Printf("replay discarded a torn tail (%d bytes)\n", stats.DiscardedBytes)
	}
	fmt.Printf("replayed %d records from %d segments (%d already folded) in %v\n",
		stats.Records, stats.Segments, stats.SkippedSegments, stats.Duration)
	if err := engine.Checkpoint(*snapPath); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := engine.CloseWAL(); err != nil {
		return err
	}
	info, err := os.Stat(*snapPath)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint OK: %s (%d bytes), log truncated behind it\n", *snapPath, info.Size())
	return nil
}

// cmdBenchWAL measures the mutation cost of the durability modes — no
// WAL, log-only (no fsync), group commit, fsync-per-append — under
// concurrent writers, and records the comparison for BENCH_wal.json.
func cmdBenchWAL(args []string) error {
	fs := flag.NewFlagSet("bench-wal", flag.ExitOnError)
	size := fs.String("size", "tiny", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	writers := fs.Int("writers", 4, "concurrent mutating goroutines")
	mutations := fs.Int("mutations", 400, "total annotation inserts per mode")
	out := fs.String("out", "BENCH_wal.json", "output JSON path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.All(
		flagcheck.Positive("writers", *writers),
		flagcheck.Positive("mutations", *mutations),
	); err != nil {
		return err
	}
	results, err := bench.RunWALBench(*size, *seed, *writers, *mutations)
	if err != nil {
		return err
	}
	bench.WALTable(results).Print(os.Stdout)
	if *out == "" {
		return bench.WriteWALJSON(os.Stdout, results)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteWALJSON(f, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
