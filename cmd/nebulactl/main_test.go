package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCmdGenerate(t *testing.T) {
	if err := cmdGenerate([]string{"--size", "tiny", "--seed", "42"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGenerate([]string{"--size", "nope"}); err == nil {
		t.Error("unknown size accepted")
	}
}

func TestCmdExperimentFastFigures(t *testing.T) {
	for _, fig := range []string{"11b", "11c", "18", "naive"} {
		if err := cmdExperiment([]string{"--figure", fig, "--size", "tiny"}); err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
	}
	if err := cmdExperiment([]string{"--figure", "99x", "--size", "tiny"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := cmdExperiment([]string{"--figure", "11b", "--size", "tiny", "--format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExperiment([]string{"--figure", "11b", "--size", "tiny", "--format", "bogus"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestCmdLearn(t *testing.T) {
	if err := cmdLearn([]string{"--size", "tiny"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdDiscover(t *testing.T) {
	if err := cmdDiscover([]string{"--size", "tiny", "--index", "3", "--delta", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDiscover([]string{"--size", "tiny", "--index", "100000"}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestCmdDiscoverSpreading(t *testing.T) {
	if err := cmdDiscover([]string{"--size", "tiny", "--index", "40", "--spread", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdDemo(t *testing.T) {
	if err := cmdDemo(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "state.gob")
	if err := cmdSnapshot([]string{"--size", "tiny", "--out", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	if err := cmdSnapshot([]string{"--size", "tiny", "--out", "/nonexistent-dir/x.gob"}); err == nil {
		t.Error("unwritable path accepted")
	}
}
