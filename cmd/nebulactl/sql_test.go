package main

import (
	"strings"
	"testing"

	"nebula"
	"nebula/internal/bench"
)

func shellEngine(t *testing.T) *nebula.Engine {
	t.Helper()
	env, err := bench.LoadEnv("tiny", 42)
	if err != nil {
		t.Fatal(err)
	}
	ds := env.Dataset
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunShellExecutesStatements(t *testing.T) {
	e := shellEngine(t)
	in := strings.NewReader(strings.Join([]string{
		"",   // blank line ignored
		`\h`, // help
		"SELECT GID FROM Gene WHERE GID = 'JW00003'",
		"BROKEN STATEMENT",
		`\q`,
	}, "\n"))
	var out strings.Builder
	if err := runShell(e, in, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "JW00003") {
		t.Errorf("select result missing:\n%s", s)
	}
	if !strings.Contains(s, "error:") {
		t.Errorf("error line missing:\n%s", s)
	}
	if !strings.Contains(s, "VERIFY ATTACHMENT") {
		t.Errorf("help missing:\n%s", s)
	}
}

func TestRunShellEOF(t *testing.T) {
	e := shellEngine(t)
	var out strings.Builder
	if err := runShell(e, strings.NewReader("SELECT GID FROM Gene WHERE GID = 'JW00001'"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "JW00001") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestPrintResultMessageOnly(t *testing.T) {
	var out strings.Builder
	printResult(&out, &nebula.CommandResult{Message: "done"})
	if strings.TrimSpace(out.String()) != "done" {
		t.Errorf("output %q", out.String())
	}
}
