package main

import (
	"flag"
	"fmt"
	"os"

	"nebula"
	"nebula/internal/bench"
	"nebula/internal/meta"
)

// cmdSnapshot saves a generated dataset's engine state to a file, then (as
// a self-check) restores it and prints the restored summary — demonstrating
// the persistence path end to end.
func cmdSnapshot(args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	size := fs.String("size", "tiny", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	out := fs.String("out", "nebula-state.gob", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := bench.LoadEnv(*size, *seed)
	if err != nil {
		return err
	}
	ds := env.Dataset
	engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, nebula.DefaultOptions())
	if err != nil {
		return err
	}
	// Durable save: temp file + fsync + atomic rename, so an interrupted
	// run never leaves a truncated state file under *out. All write and
	// close errors surface here.
	if err := engine.SaveSnapshotFile(*out); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("saved %s (%d bytes): %d tuples, %d annotations, %d edges, ACG %d/%d\n",
		*out, info.Size(), ds.DB.TotalRows(), ds.Store.Len(), ds.Store.EdgeCount(),
		ds.Graph.Nodes(), ds.Graph.Edges())

	// Self-check: restore and compare the summary counters.
	r, err := os.Open(*out)
	if err != nil {
		return err
	}
	defer r.Close()
	restored, err := nebula.RestoreEngine(r, func(db *nebula.Database) (*nebula.MetaRepository, error) {
		return meta.NewRepository(db, nil), nil
	}, nebula.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("restore check: %d tuples, %d annotations, %d edges, ACG %d/%d\n",
		restored.DB().TotalRows(), restored.Store().Len(), restored.Store().EdgeCount(),
		restored.Graph().Nodes(), restored.Graph().Edges())
	if restored.DB().TotalRows() != ds.DB.TotalRows() || restored.Store().EdgeCount() != ds.Store.EdgeCount() {
		return fmt.Errorf("restore mismatch")
	}
	fmt.Println("round trip OK")
	return nil
}
