// Command nebulactl drives the Nebula reproduction from the command line:
// it generates the synthetic datasets, runs the per-figure experiment
// harness, and offers an interactive-style demo of the discovery pipeline
// on a single annotation.
//
// Usage:
//
//	nebulactl generate   --size small --seed 42
//	nebulactl experiment --figure 12a --size small [--all-sizes] [--tune] [--full-naive]
//	nebulactl experiment --figure all --size small
//	nebulactl discover   --size tiny --index 3 --delta 1 [--epsilon 0.6] [--spread K]
//	                     [--timeout 50ms] [--max-candidates N] [--max-queries N]
//	                     [--parallelism N] [--cache on|off|bytes]
//	nebulactl wal-info   --wal DIR [--json]
//	nebulactl checkpoint --wal DIR --snapshot FILE [--size tiny] [--seed 42]
//	nebulactl bench-wal  --size tiny --writers 4 --mutations 400 --out BENCH_wal.json
//	nebulactl bench-parallel --size large --workers 2,4,8 --rounds 3 --out BENCH_parallel.json
//	nebulactl bench-server --size tiny --levels 4,32 --requests 200 --out BENCH_server.json
//	nebulactl bench-cache --sizes small,mid --rounds 3 --out BENCH_cache.json
//	nebulactl bench-trace --size small --rounds 3 --out BENCH_trace.json
//	nebulactl bench-stream --size tiny --mutations 24 --drain-every 4 --out BENCH_stream.json
//	nebulactl demo
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nebula"
	"nebula/internal/bench"
	"nebula/internal/flagcheck"
	"nebula/internal/meta"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "discover":
		err = cmdDiscover(os.Args[2:])
	case "demo":
		err = cmdDemo()
	case "sql":
		err = cmdSQL(os.Args[2:])
	case "learn":
		err = cmdLearn(os.Args[2:])
	case "snapshot":
		err = cmdSnapshot(os.Args[2:])
	case "wal-info":
		err = cmdWALInfo(os.Args[2:])
	case "checkpoint":
		err = cmdCheckpoint(os.Args[2:])
	case "bench-wal":
		err = cmdBenchWAL(os.Args[2:])
	case "bench-parallel":
		err = cmdBenchParallel(os.Args[2:])
	case "bench-plan":
		err = cmdBenchPlan(os.Args[2:])
	case "bench-server":
		err = cmdBenchServer(os.Args[2:])
	case "bench-cache":
		err = cmdBenchCache(os.Args[2:])
	case "bench-trace":
		err = cmdBenchTrace(os.Args[2:])
	case "bench-stream":
		err = cmdBenchStream(os.Args[2:])
	case "bench-shard":
		err = cmdBenchShard(os.Args[2:])
	case "bench-store":
		err = cmdBenchStore(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "nebulactl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nebulactl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `nebulactl — proactive annotation management experiments

commands:
  generate    build a synthetic dataset and print its summary
  experiment  run a figure's experiment harness (11a..15b, naive, profile,
              ablation-context, ablation-focal, all)
  discover    walk one workload annotation through the pipeline
  demo        run the paper's Figure 1 running example
  sql         interactive extended-SQL shell over a generated dataset
  learn       mine ConceptRefs proposals from the existing annotations
  snapshot    save a dataset's engine state to disk and verify the round trip
  wal-info    inspect a write-ahead log directory: segments, records, torn tails
  checkpoint  fold a WAL's durable history into a snapshot offline and
              truncate the log (run only while no daemon holds the log)
  bench-wal   measure mutation overhead per durability mode (no WAL,
              log-only, group commit, fsync-per-append) under concurrent
              writers
  bench-parallel
              measure sequential vs parallel keyword-batch execution and
              record the comparison (including byte-identity of results)
  bench-plan  measure exhaustive vs planned top-k discovery over the
              workload (cost-based planner with early termination) and
              verify the planner's exactness contract
  bench-server
              load-test the nebulad serving layer in-process: throughput,
              latency percentiles, and shed load per concurrency level
  bench-cache
              measure the multi-level result cache: cold vs warm discovery
              sweeps, hit rates, occupancy, and byte-identity against an
              uncached control engine
  bench-trace
              measure request-scoped tracing overhead on the discovery
              sweep and verify the traced and untraced runs are
              byte-identical (tracing is observe-only)
  bench-stream
              measure the streaming ingest pipeline: async submission,
              change-driven re-discovery, enqueue-to-attached freshness,
              and byte-identity against a synchronous from-scratch control
  bench-shard
              measure mixed write+discover throughput across engine shard
              counts (per-shard locks and cache epochs) and verify results
              are byte-identical at every shard count
  bench-store
              measure restart cost with the disk-backed index substrate:
              heap-mode full re-index vs mapping checkpoint-flushed segment
              files back in, with byte-identity of the discovery sweep
`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	size := fs.String("size", "small", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := bench.LoadEnv(*size, *seed)
	if err != nil {
		return err
	}
	ds := env.Dataset
	fmt.Printf("dataset %s (seed %d)\n", env.Name, *seed)
	for _, t := range ds.DB.TableNames() {
		fmt.Printf("  table %-12s %8d tuples\n", t, ds.DB.MustTable(t).Len())
	}
	fmt.Printf("  annotations (base publications): %d\n", ds.Store.Len())
	fmt.Printf("  true attachment edges:           %d\n", ds.Store.EdgeCount())
	fmt.Printf("  ideal edges (incl. workload):    %d\n", len(ds.Ideal))
	fmt.Printf("  ACG: %d nodes, %d edges, stable=%v\n", ds.Graph.Nodes(), ds.Graph.Edges(), ds.Graph.Stable())
	fmt.Printf("  workload annotations: %d\n", len(ds.Workload))
	m := ds.Store.QualityTrueOnly(ds.Ideal)
	fmt.Printf("  under-annotation: F_N=%.3f F_P=%.3f (%d edges missing)\n",
		m.FalseNegativeRatio, m.FalsePositiveRatio, m.Missing)
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	figure := fs.String("figure", "all", "figure id: 11a 11b 11c 12a 12b 13 14a 14b 15a 15b naive profile ablation-context ablation-focal all")
	size := fs.String("size", "small", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	allSizes := fs.Bool("all-sizes", false, "run Fig 12/13 over D_small, D_mid, D_large")
	tune := fs.Bool("tune", true, "tune verification bounds with BoundsSetting for Fig 15(a)")
	fullNaive := fs.Bool("full-naive", false, "run the naive baseline on every L^m (slow)")
	format := fs.String("format", "text", "output format: text|csv|json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := bench.LoadEnv(*size, *seed)
	if err != nil {
		return err
	}
	envs := []*bench.Env{env}
	if *allSizes {
		envs = envs[:0]
		for _, s := range bench.DatasetSizes {
			e, err := bench.LoadEnv(s, *seed)
			if err != nil {
				return err
			}
			envs = append(envs, e)
		}
	}

	emit := func(t *bench.Table) error { return t.Write(os.Stdout, *format) }
	run := func(id string) error {
		switch id {
		case "11a":
			return emit(bench.Fig11a(env))
		case "11b":
			return emit(bench.Fig11b(env))
		case "11c":
			return emit(bench.Fig11c(env))
		case "12a":
			return emit(bench.Fig12a(envs, *fullNaive))
		case "12b":
			return emit(bench.Fig12b(envs, *fullNaive))
		case "13":
			return emit(bench.Fig13(envs))
		case "14a":
			return emit(bench.Fig14a(env))
		case "14b":
			return emit(bench.Fig14b(env))
		case "15a":
			t, err := bench.Fig15a(env, *tune)
			if err != nil {
				return err
			}
			return emit(t)
		case "15b":
			return emit(bench.Fig15b(env))
		case "naive":
			return emit(bench.NaiveAssessment(env))
		case "profile":
			return emit(bench.HopProfileTable(env))
		case "18":
			return emit(bench.WorkloadSummary(env))
		case "ablation-context":
			return emit(bench.AblationContextAdjustment(env))
		case "ablation-focal":
			return emit(bench.AblationFocalAdjustment(env))
		case "ablation-technique":
			return emit(bench.AblationSearchTechnique(env))
		default:
			return fmt.Errorf("unknown figure %q", id)
		}
	}
	if *figure == "all" {
		for _, id := range []string{"11a", "11b", "11c", "12a", "12b", "13",
			"14a", "14b", "15a", "15b", "naive", "profile",
			"18", "ablation-context", "ablation-focal", "ablation-technique"} {
			if err := run(id); err != nil {
				return err
			}
		}
		return nil
	}
	return run(*figure)
}

// cmdLearn runs the footnote-2 extension: mine the existing annotations for
// the concepts they reference and the columns they reference them by, and
// print the proposed ConceptRefs rows with their support.
func cmdLearn(args []string) error {
	fs := flag.NewFlagSet("learn", flag.ExitOnError)
	size := fs.String("size", "small", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	minSupport := fs.Float64("min-support", 0.15, "minimum column support")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := bench.LoadEnv(*size, *seed)
	if err != nil {
		return err
	}
	opts := meta.DefaultLearnOptions()
	opts.MinSupport = *minSupport
	concepts, supports := meta.LearnConcepts(env.Dataset.DB, env.Dataset.Store, opts)
	fmt.Println("column support (fraction of attachments whose annotation text contains the column's value):")
	for _, s := range supports {
		fmt.Printf("  %-22s %6.3f  (%d/%d)\n", s.Column, s.Support, s.Hits, s.Attachments)
	}
	fmt.Printf("\nproposed ConceptRefs rows (min support %.2f):\n", *minSupport)
	for _, c := range concepts {
		fmt.Printf("  concept %-10s table %-10s referenced by %v\n", c.Name, c.Table, c.ReferencedBy)
	}
	return nil
}

func cmdDiscover(args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	size := fs.String("size", "tiny", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	index := fs.Int("index", 0, "workload annotation index")
	delta := fs.Int("delta", 1, "distortion degree Δ (focal attachments kept)")
	epsilon := fs.Float64("epsilon", 0.6, "cutoff threshold ε")
	spreadK := fs.Int("spread", 0, "focal-spreading radius K (0 = full search)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget per run (0 = none); partial candidates are reported when it fires")
	maxCand := fs.Int("max-candidates", 0, "keep only the N strongest candidates (0 = all)")
	maxQueries := fs.Int("max-queries", 0, "cap Stage 1 at the N highest-weight queries (0 = all)")
	parallelism := fs.Int("parallelism", 0, "worker pool size for keyword execution (0 = NumCPU, 1 = sequential)")
	cacheFlag := fs.String("cache", "", "result caching: on, off, or a byte budget (default on at 64 MiB)")
	traceFlag := fs.Bool("trace", false, "record a request-scoped span tree and print it after the run (observe-only)")
	planFlag := fs.Bool("plan", false, "enable the cost-based planner (requires --topk; top-k output is byte-identical to exhaustive)")
	topK := fs.Int("topk", 0, "keep only the strongest k attachments (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.All(
		flagcheck.NonNegativeDuration("timeout", *timeout),
		flagcheck.NonNegative("max-candidates", *maxCand),
		flagcheck.NonNegative("max-queries", *maxQueries),
		flagcheck.NonNegative("parallelism", *parallelism),
		flagcheck.NonNegative("spread", *spreadK),
		flagcheck.NonNegative("topk", *topK),
	); err != nil {
		return err
	}
	env, err := bench.LoadEnv(*size, *seed)
	if err != nil {
		return err
	}
	ds := env.Dataset
	if *index < 0 || *index >= len(ds.Workload) {
		return fmt.Errorf("index %d outside workload [0, %d)", *index, len(ds.Workload))
	}
	spec := ds.Workload[*index]

	opts := nebula.DefaultOptions()
	opts.Epsilon = *epsilon
	if *spreadK > 0 {
		opts.Spreading = true
		opts.SpreadingK = *spreadK
	}
	opts.Budget = nebula.Budget{
		MaxCandidates: *maxCand,
		MaxQueries:    *maxQueries,
		Deadline:      *timeout,
	}
	opts.Parallelism = *parallelism
	opts.Trace = *traceFlag
	opts.Plan = *planFlag
	opts.TopK = *topK
	cacheCfg, err := nebula.ParseCacheConfig(*cacheFlag)
	if err != nil {
		return err
	}
	opts.Cache = cacheCfg
	engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		return err
	}
	focal := spec.Focal(*delta)
	if err := engine.AddAnnotation(spec.Ann, focal); err != nil {
		return err
	}
	fmt.Printf("annotation %s (%d bytes, class %s)\n", spec.Ann.ID, len(spec.Ann.Body), spec.Refs)
	fmt.Printf("body: %q\n", spec.Ann.Body)
	fmt.Printf("focal (Δ=%d): %v\n", *delta, focal)
	fmt.Printf("hidden ground truth: %v\n\n", spec.Hidden(*delta))

	disc, outcome, err := engine.Process(spec.Ann.ID)
	if err != nil {
		if disc == nil || (!errors.Is(err, nebula.ErrCancelled) && !errors.Is(err, nebula.ErrBudgetExceeded)) {
			return err
		}
		// Governed interruption: report the partial run instead of dying.
		fmt.Printf("run interrupted (%v); reporting partial results, nothing routed to verification\n\n", err)
	}
	if degraded := disc.Degraded(); len(degraded) > 0 {
		fmt.Println("degraded run:")
		for _, reason := range degraded {
			fmt.Printf("  - %s\n", reason)
		}
		fmt.Println()
	}
	fmt.Printf("generated %d keyword queries (maps %v, context %v, queries %v):\n",
		len(disc.Queries), disc.GenStats.MapGeneration, disc.GenStats.ContextAdjustment,
		disc.GenStats.QueryGeneration)
	for _, q := range disc.Queries {
		fmt.Printf("  %v\n", q)
	}
	if ps := disc.ExecStats.Plan; ps != nil && ps.Enabled {
		fmt.Printf("\nplan: top-%d, %d/%d queries executed, %d pruned (waves=%d frontier=%d completion-scanned=%d)\n",
			ps.TopK, ps.Executed, ps.Queries, ps.Pruned, ps.Waves, ps.Frontier, ps.CompletionScanned)
		for _, s := range ps.Skipped {
			fmt.Printf("  skipped %s\n", s)
		}
	} else if ps != nil && ps.Reason != "" {
		fmt.Printf("\nplan: not eligible (%s)\n", ps.Reason)
	}
	fmt.Printf("\nsearched %d tuples (miniDB=%v); %d candidates:\n",
		disc.ExecStats.SearchedDB, disc.ExecStats.MiniDBUsed, len(disc.Candidates))
	truth := map[nebula.TupleID]bool{}
	for _, t := range spec.Related {
		truth[t] = true
	}
	for _, c := range disc.Candidates {
		mark := " "
		if truth[c.Tuple.ID] {
			mark = "*"
		}
		fmt.Printf("  %s conf=%.3f %v (evidence %v)\n", mark, c.Confidence, c.Tuple.ID, c.Evidence)
	}
	fmt.Printf("\nverification (bounds [%.2f, %.2f]): %d auto-accepted, %d pending, %d auto-rejected\n",
		engine.Bounds().Lower, engine.Bounds().Upper,
		len(outcome.Accepted), len(outcome.Pending), len(outcome.Rejected))
	if disc.Trace != nil {
		fmt.Printf("\ntrace (%d spans):\n%s", disc.Trace.SpanCount(), disc.Trace)
	}
	return nil
}

// cmdBenchParallel measures sequential vs parallel execution of the
// workload's keyword-query batch and records the comparison as JSON. The
// speedup is bounded by GOMAXPROCS — on a single-core host the interesting
// output is the identity check, which must hold at every worker count.
func cmdBenchParallel(args []string) error {
	fs := flag.NewFlagSet("bench-parallel", flag.ExitOnError)
	size := fs.String("size", "large", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	workers := fs.String("workers", "2,4,8", "comma-separated worker counts to compare against sequential")
	rounds := fs.Int("rounds", 3, "measurement rounds per configuration (best time kept)")
	out := fs.String("out", "BENCH_parallel.json", "output JSON path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.Positive("rounds", *rounds); err != nil {
		return err
	}
	var counts []int
	for _, part := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return fmt.Errorf("bad worker count %q (need integers >= 2)", part)
		}
		counts = append(counts, n)
	}
	env, err := bench.LoadEnv(*size, *seed)
	if err != nil {
		return err
	}
	results, err := bench.RunParallelBench(env, counts, *rounds)
	if err != nil {
		return err
	}
	bench.ParallelTable(results).Print(os.Stdout)
	for _, r := range results {
		if !r.Identical {
			return fmt.Errorf("parallel results diverged from sequential (workers=%d shared=%v)", r.Workers, r.Shared)
		}
	}
	if *out == "" {
		return bench.WriteParallelJSON(os.Stdout, results)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteParallelJSON(f, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// cmdBenchPlan measures the cost-based planner: exhaustive top-k discovery
// (planning off) vs planned top-k discovery with early termination over the
// workload, recording the speedup, the pruned-query counts, and the
// byte-identity of the top-k candidates (the exactness contract).
func cmdBenchPlan(args []string) error {
	fs := flag.NewFlagSet("bench-plan", flag.ExitOnError)
	size := fs.String("size", "large", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	topks := fs.String("topk", "10", "comma-separated top-k values to compare")
	rounds := fs.Int("rounds", 3, "measurement rounds per configuration (best time kept)")
	out := fs.String("out", "BENCH_plan.json", "output JSON path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.Positive("rounds", *rounds); err != nil {
		return err
	}
	var ks []int
	for _, part := range strings.Split(*topks, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad top-k %q (need positive integers)", part)
		}
		ks = append(ks, n)
	}
	env, err := bench.LoadEnv(*size, *seed)
	if err != nil {
		return err
	}
	results, err := bench.RunPlanBench(env, ks, *rounds)
	if err != nil {
		return err
	}
	bench.PlanTable(results).Print(os.Stdout)
	for _, r := range results {
		if !r.Identical {
			return fmt.Errorf("planned top-%d candidates diverged from exhaustive", r.TopK)
		}
	}
	if *out == "" {
		return bench.WritePlanJSON(os.Stdout, results)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WritePlanJSON(f, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// cmdBenchServer load-tests the nebulad serving layer in-process: discovery
// round trips through the full HTTP stack (admission gate included) at each
// concurrency level, recording throughput, latency percentiles, and the
// 429s the bounded queue shed.
func cmdBenchServer(args []string) error {
	fs := flag.NewFlagSet("bench-server", flag.ExitOnError)
	size := fs.String("size", "tiny", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	levels := fs.String("levels", "4,32", "comma-separated client concurrency levels")
	requests := fs.Int("requests", 200, "discovery requests per level")
	maxInFlight := fs.Int("max-inflight", 4, "server execution slots")
	queueDepth := fs.Int("queue-depth", 8, "server admission queue depth")
	out := fs.String("out", "BENCH_server.json", "output JSON path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.All(
		flagcheck.Positive("requests", *requests),
		flagcheck.Positive("max-inflight", *maxInFlight),
		flagcheck.Positive("queue-depth", *queueDepth),
	); err != nil {
		return err
	}
	var counts []int
	for _, part := range strings.Split(*levels, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad concurrency level %q (need integers >= 1)", part)
		}
		counts = append(counts, n)
	}
	cfg := bench.ServerBenchConfig{
		Levels:      counts,
		Requests:    *requests,
		MaxInFlight: *maxInFlight,
		QueueDepth:  *queueDepth,
	}
	results, err := bench.RunServerBench(*size, *seed, cfg)
	if err != nil {
		return err
	}
	bench.ServerTable(results).Print(os.Stdout)
	if *out == "" {
		return bench.WriteServerJSON(os.Stdout, results)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteServerJSON(f, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// cmdBenchCache measures the multi-level result cache: one cold discovery
// sweep per dataset size, repeated warm sweeps, hit-rate/occupancy deltas,
// and byte-identity against a caching-disabled control engine. The warm
// sweeps short-circuit on the discovery cache, so the speedup holds even on
// a single-core host.
func cmdBenchCache(args []string) error {
	fs := flag.NewFlagSet("bench-cache", flag.ExitOnError)
	sizes := fs.String("sizes", "small,mid", "comma-separated dataset sizes to measure")
	seed := fs.Int64("seed", 42, "generator seed")
	rounds := fs.Int("rounds", 3, "warm sweeps per size (best time kept)")
	cacheBytes := fs.Int64("cache-bytes", 0, "cache byte budget (0 = engine default, 64 MiB)")
	out := fs.String("out", "BENCH_cache.json", "output JSON path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.All(
		flagcheck.Positive("rounds", *rounds),
		flagcheck.NonNegative("cache-bytes", int(*cacheBytes)),
	); err != nil {
		return err
	}
	var names []string
	for _, part := range strings.Split(*sizes, ",") {
		if s := strings.TrimSpace(part); s != "" {
			names = append(names, s)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no dataset sizes given")
	}
	results, err := bench.RunCacheBench(names, *seed, *rounds, *cacheBytes)
	if err != nil {
		return err
	}
	bench.CacheTable(results).Print(os.Stdout)
	for _, r := range results {
		if !r.Identical {
			return fmt.Errorf("cached results diverged from the uncached control (%s)", r.Dataset)
		}
	}
	if *out == "" {
		return bench.WriteCacheJSON(os.Stdout, results)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteCacheJSON(f, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// cmdBenchTrace measures the overhead of request-scoped tracing on the
// discovery sweep and enforces the observe-only contract: the traced and
// untraced sweeps must render byte-identical results.
func cmdBenchTrace(args []string) error {
	fs := flag.NewFlagSet("bench-trace", flag.ExitOnError)
	size := fs.String("size", "small", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	rounds := fs.Int("rounds", 3, "measurement rounds per mode (best time kept)")
	out := fs.String("out", "BENCH_trace.json", "output JSON path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.Positive("rounds", *rounds); err != nil {
		return err
	}
	result, err := bench.RunTraceBench(*size, *seed, *rounds)
	if err != nil {
		return err
	}
	bench.TraceTable(result).Print(os.Stdout)
	if !result.Identical {
		return fmt.Errorf("traced results diverged from untraced (%s); tracing must be observe-only", result.Dataset)
	}
	if *out == "" {
		return bench.WriteTraceJSON(os.Stdout, result)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteTraceJSON(f, result); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// cmdBenchStream measures the streaming proactive pipeline: the workload
// submitted through the async path with drains interleaved, tuple mutations
// driving K-hop CDC re-discovery, and a convergence flush whose final state
// must be byte-identical to a synchronous from-scratch control engine over
// the same final database.
func cmdBenchStream(args []string) error {
	fs := flag.NewFlagSet("bench-stream", flag.ExitOnError)
	size := fs.String("size", "tiny", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	mutations := fs.Int("mutations", 24, "tuple mutations driving CDC re-discovery")
	drainEvery := fs.Int("drain-every", 4, "submissions/mutations between drains")
	out := fs.String("out", "BENCH_stream.json", "output JSON path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.All(
		flagcheck.NonNegative("mutations", *mutations),
		flagcheck.Positive("drain-every", *drainEvery),
	); err != nil {
		return err
	}
	result, err := bench.RunStreamBench(*size, *seed, *mutations, *drainEvery)
	if err != nil {
		return err
	}
	results := []*bench.StreamResult{result}
	bench.StreamTable(results).Print(os.Stdout)
	if !result.Identical {
		return fmt.Errorf("streaming state diverged from the synchronous control (%s); async must not change results", result.Dataset)
	}
	if *out == "" {
		return bench.WriteStreamJSON(os.Stdout, results)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteStreamJSON(f, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// cmdBenchShard measures the hash-partitioned engine: a mixed
// write+discover workload at each shard count (per-shard mutation locks and
// per-shard cache invalidation epochs), plus a sequential identity phase
// asserting the shard count never changes discovery output. The throughput
// win is invalidation granularity — writes homed on one shard leave the
// other shards' cached discoveries live — so it holds even at GOMAXPROCS=1.
func cmdBenchShard(args []string) error {
	fs := flag.NewFlagSet("bench-shard", flag.ExitOnError)
	size := fs.String("size", "small", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	shards := fs.String("shards", "1,2,4,8", "comma-separated shard counts to compare")
	workers := fs.Int("workers", 4, "concurrent mutator goroutines in the timed phase")
	writes := fs.Int("writes", 48, "annotation writes in the timed phase")
	discovers := fs.Int("discovers", 16, "cached discoveries issued after each write")
	readers := fs.Int("readers", 24, "warm annotation pool the discoveries cycle over")
	out := fs.String("out", "BENCH_shard.json", "output JSON path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.All(
		flagcheck.Positive("workers", *workers),
		flagcheck.Positive("writes", *writes),
		flagcheck.Positive("discovers", *discovers),
		flagcheck.Positive("readers", *readers),
	); err != nil {
		return err
	}
	var counts []int
	for _, part := range strings.Split(*shards, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad shard count %q (need integers >= 1)", part)
		}
		counts = append(counts, n)
	}
	results, err := bench.RunShardBench(*size, *seed, counts, *workers, *writes, *discovers, *readers)
	if err != nil {
		return err
	}
	bench.ShardTable(results).Print(os.Stdout)
	for _, r := range results {
		if !r.Identical {
			return fmt.Errorf("sharded results diverged from the single-shard control (shards=%d); sharding must not change results", r.Shards)
		}
	}
	if *out == "" {
		return bench.WriteShardJSON(os.Stdout, results)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteShardJSON(f, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// cmdBenchStore measures the disk-backed index substrate: restart cost
// from the same snapshot in heap mode (deferred full re-index at first
// discovery) vs disk mode (checkpoint-flushed segment files mapped back
// in), plus byte-identity of the post-restart discovery sweep.
func cmdBenchStore(args []string) error {
	fs := flag.NewFlagSet("bench-store", flag.ExitOnError)
	size := fs.String("size", "small", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	out := fs.String("out", "BENCH_store.json", "output JSON path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "nebula-bench-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	results, err := bench.RunStoreBench(*size, *seed, dir)
	if err != nil {
		return err
	}
	bench.StoreTable(results).Print(os.Stdout)
	for _, r := range results {
		if !r.Identical {
			return fmt.Errorf("disk-mode results diverged from the heap-mode control (mode=%s); the substrate must not change results", r.Mode)
		}
	}
	if *out == "" {
		return bench.WriteStoreJSON(os.Stdout, results)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteStoreJSON(f, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// cmdDemo reproduces the paper's Figure 1 running example end to end.
func cmdDemo() error {
	db := nebula.NewDatabase()
	gene := &nebula.Schema{
		Name: "Gene",
		Columns: []nebula.Column{
			{Name: "GID", Type: nebula.TypeString, Indexed: true},
			{Name: "Name", Type: nebula.TypeString, Indexed: true},
			{Name: "Length", Type: nebula.TypeInt},
			{Name: "Seq", Type: nebula.TypeString},
			{Name: "Family", Type: nebula.TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	}
	gt, err := db.CreateTable(gene)
	if err != nil {
		return err
	}
	rows := [][]nebula.Value{
		{nebula.String("JW0013"), nebula.String("grpC"), nebula.Int(1130), nebula.String("TGCT"), nebula.String("F1")},
		{nebula.String("JW0014"), nebula.String("groP"), nebula.Int(1916), nebula.String("GGTT"), nebula.String("F6")},
		{nebula.String("JW0015"), nebula.String("insL"), nebula.Int(1112), nebula.String("GGCT"), nebula.String("F1")},
		{nebula.String("JW0018"), nebula.String("nhaA"), nebula.Int(1166), nebula.String("CGTT"), nebula.String("F1")},
		{nebula.String("JW0019"), nebula.String("yaaB"), nebula.Int(905), nebula.String("TGTG"), nebula.String("F3")},
		{nebula.String("JW0012"), nebula.String("yaaI"), nebula.Int(404), nebula.String("TTCG"), nebula.String("F1")},
		{nebula.String("JW0027"), nebula.String("namE"), nebula.Int(658), nebula.String("GTTT"), nebula.String("F4")},
	}
	for _, r := range rows {
		if _, err := gt.Insert(r); err != nil {
			return err
		}
	}
	repo := nebula.NewMetaRepository(db, nil)
	if err := repo.AddConcept(&nebula.Concept{
		Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}},
	}); err != nil {
		return err
	}
	repo.AddEquivalentNames("GID", "Gene ID")
	if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{4}`); err != nil {
		return err
	}
	if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "Name"}, `[a-z]{2,3}[A-Z]`); err != nil {
		return err
	}

	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.9}
	engine, err := nebula.New(db, repo, opts)
	if err != nil {
		return err
	}

	fmt.Println("Figure 1 demo: Alice attaches a comment to gene JW0019 (yaaB).")
	alice := &nebula.Annotation{
		ID:     "alice-comment",
		Author: "alice",
		Body:   "From the exp, it seems this gene is correlated to JW0014 of grpC",
		Kind:   "comment",
	}
	yaaB, _ := gt.GetByPK(nebula.String("JW0019"))
	if err := engine.AddAnnotation(alice, []nebula.TupleID{yaaB.ID}); err != nil {
		return err
	}
	disc, outcome, err := engine.Process(alice.ID)
	if err != nil {
		return err
	}
	fmt.Printf("\nNebula generated %d keyword queries from the comment:\n", len(disc.Queries))
	for _, q := range disc.Queries {
		fmt.Printf("  %v\n", q)
	}
	fmt.Println("\npredicted missing attachments:")
	for _, c := range disc.Candidates {
		fmt.Printf("  conf=%.3f %v\n", c.Confidence, c.Tuple)
	}
	fmt.Printf("\nrouting: %d auto-accepted, %d pending expert verification, %d rejected\n",
		len(outcome.Accepted), len(outcome.Pending), len(outcome.Rejected))
	for _, t := range engine.PendingTasks() {
		fmt.Printf("  pending %v\n", t)
	}
	fmt.Println("\nThe comment now reaches JW0014 and grpC — the database is no longer under-annotated.")
	return nil
}
