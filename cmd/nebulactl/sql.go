package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nebula"
	"nebula/internal/bench"
)

// cmdSQL runs an interactive extended-SQL shell over a generated dataset.
// Statements are executed through Engine.ExecCommand; `\q` quits and `\h`
// prints the statement summary.
func cmdSQL(args []string) error {
	fs := flag.NewFlagSet("sql", flag.ExitOnError)
	size := fs.String("size", "tiny", "dataset size: tiny|small|mid|large")
	seed := fs.Int64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := bench.LoadEnv(*size, *seed)
	if err != nil {
		return err
	}
	ds := env.Dataset
	engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, nebula.DefaultOptions())
	if err != nil {
		return err
	}
	// Make the workload annotations available to ANNOTATE-free exploration:
	// insert them with their Δ=1 focal.
	for _, spec := range ds.Workload {
		if err := engine.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			return err
		}
	}
	fmt.Printf("nebula sql shell — %s, %d tuples, %d annotations. \\h for help, \\q to quit.\n",
		env.Name, ds.DB.TotalRows(), engine.Store().Len())
	return runShell(engine, os.Stdin, os.Stdout)
}

func runShell(engine *nebula.Engine, in io.Reader, out io.Writer) error {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "nebula> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return nil
		case line == `\h` || line == "help":
			fmt.Fprint(out, `statements:
  VERIFY ATTACHMENT <vid>
  REJECT ATTACHMENT <vid>
  LIST PENDING [LIMIT n]
  ANNOTATE <table> '<pk>' AS '<id>' BODY '<text>'
  DISCOVER '<annotation-id>'
  PROCESS '<annotation-id>'
  SELECT cols FROM table [WHERE col = lit [AND ...]] [WITH ANNOTATIONS]
`)
			continue
		}
		res, err := engine.ExecCommand(line)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			continue
		}
		printResult(out, res)
	}
}

func printResult(out io.Writer, res *nebula.CommandResult) {
	if len(res.Columns) > 0 {
		widths := make([]int, len(res.Columns))
		for i, c := range res.Columns {
			widths[i] = len(c)
		}
		for _, row := range res.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		writeRow := func(cells []string) {
			parts := make([]string, len(cells))
			for i, c := range cells {
				parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
			}
			fmt.Fprintln(out, " "+strings.Join(parts, " | "))
		}
		writeRow(res.Columns)
		for _, row := range res.Rows {
			writeRow(row)
		}
	}
	if res.Message != "" {
		fmt.Fprintln(out, res.Message)
	}
}
