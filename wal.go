package nebula

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"nebula/internal/annotation"
	"nebula/internal/ingest"
	"nebula/internal/relational"
	"nebula/internal/snapshot"
	"nebula/internal/vfs"
	"nebula/internal/wal"
)

// This file binds the engine to its write-ahead log. The protocol:
//
//   - Every durable mutation appends a logical wal.Record under the
//     engine's write lock, BEFORE applying the change, then fsyncs (with
//     group-commit absorption) after releasing the lock — so concurrent
//     committers share flushes instead of serializing disk waits behind
//     the state lock.
//   - Records are logical and replay deterministically: outcome-dependent
//     operations (discovery routing, oracle resolutions, bounds tuning)
//     log their computed result, never the computation.
//   - Recovery is RestoreEngine (or a fresh engine) + ReplayWAL +
//     AttachWAL; Checkpoint folds the replayed state into a snapshot and
//     prunes the covered segments.
//
// AttachWAL must happen before the engine is shared across goroutines:
// the binding pointer is read without the lock on the commit path.

// walBinding carries the per-engine WAL state.
type walBinding struct {
	log *wal.Log
	fs  vfs.FS

	// captureActive/captureErr implement MutateDB row capture; both are
	// guarded by the engine's write lock (the row hook only fires inside
	// write-locked mutations).
	captureActive bool
	captureErr    error

	// ckptMu serializes checkpoints (Rotate is not safe to race with
	// itself).
	ckptMu      sync.Mutex
	checkpoints atomic.Int64

	// replay records the boot-time recovery pass for observability.
	replayMu sync.Mutex
	replay   wal.ReplayStats
}

// walLogf receives non-fatal WAL housekeeping failures (checkpoint prune
// errors). Replaceable for tests; defaults to the standard logger.
var walLogf = log.Printf

// AttachWAL binds an open write-ahead log to the engine: from this call on,
// every mutation is appended to l before it is applied, and acknowledged
// only once durable per l's sync mode. Attach after ReplayWAL (attaching
// first makes replay refuse to run — it would re-log history), and before
// the engine is shared across goroutines.
func (e *Engine) AttachWAL(l *wal.Log) {
	e.attachWAL(l, vfs.OS{})
}

// attachWAL is AttachWAL with an explicit filesystem seam for checkpoint
// writes — the hook the crash-fault tests use.
func (e *Engine) attachWAL(l *wal.Log, fsys vfs.FS) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wal = &walBinding{log: l, fs: fsys}
	// Raw MutateDB row operations are captured at the relational layer:
	// the hook sees every committed Insert/Delete/Update, and the
	// captureActive flag keeps engine-level operations (DeleteTuple, WAL
	// replay, snapshot restore) from double-logging their row effects. The
	// composite hook also feeds the ingest CDC capture when enabled.
	e.refreshRowHook()
}

// WAL returns the attached log, or nil when the engine runs without one.
func (e *Engine) WAL() *wal.Log {
	if e.wal == nil {
		return nil
	}
	return e.wal.log
}

// walAppend logs one record. Callers must hold at least one shard of e.mu
// in write mode (single-annotation paths hold their home shard; everything
// else holds the whole group); a nil binding (no WAL) appends nothing. The
// log serializes concurrent appends from different shards internally. The
// record is buffered, not yet durable — the binding's commit, called on the
// binding captured under the same lock, finishes the job after the lock is
// released.
func (e *Engine) walAppend(rec *wal.Record) error {
	if e.wal == nil {
		return nil
	}
	if _, err := e.wal.log.Append(rec); err != nil {
		return fmt.Errorf("nebula: wal append: %w", err)
	}
	return nil
}

// commit makes every record appended so far durable. Called AFTER e.mu
// is released so concurrent committers group-commit: one fsync covers all
// of them. The receiver must be the binding captured UNDER e.mu by the
// mutation being committed (a nil receiver means no WAL was attached) —
// re-reading e.wal here would race CloseWAL and let a mutator whose
// record was logged ack success without awaiting durability. A failed
// operation (opErr != nil) is passed through without syncing — an error
// reply promises nothing about durability, and replay re-fails the
// logged intent deterministically.
func (b *walBinding) commit(opErr error) error {
	if b == nil || opErr != nil {
		return opErr
	}
	if err := b.log.SyncAll(); err != nil {
		return fmt.Errorf("nebula: wal sync: %w", err)
	}
	return nil
}

// --- record construction (engine types -> wal wire types) ---

func tupleRef(id TupleID) wal.TupleRef { return wal.TupleRef{Table: id.Table, Key: id.Key} }

func refTuple(r wal.TupleRef) TupleID { return TupleID{Table: r.Table, Key: r.Key} }

func tupleRefs(ids []TupleID) []wal.TupleRef {
	if len(ids) == 0 {
		return nil
	}
	out := make([]wal.TupleRef, len(ids))
	for i, id := range ids {
		out[i] = tupleRef(id)
	}
	return out
}

func refTuples(refs []wal.TupleRef) []TupleID {
	if len(refs) == 0 {
		return nil
	}
	out := make([]TupleID, len(refs))
	for i, r := range refs {
		out[i] = refTuple(r)
	}
	return out
}

func valueCell(v Value) wal.Cell {
	c := wal.Cell{Kind: int(v.Kind())}
	switch v.Kind() {
	case TypeInt:
		c.Int = v.AsInt()
	case TypeFloat:
		c.Flt = v.AsFloat()
	default:
		c.Str = v.Str()
	}
	return c
}

func cellValue(c wal.Cell) Value {
	switch relational.Type(c.Kind) {
	case TypeInt:
		return Int(c.Int)
	case TypeFloat:
		return Float(c.Flt)
	default:
		return String(c.Str)
	}
}

func recAddAnnotation(a *Annotation, attachTo []TupleID) *wal.Record {
	return &wal.Record{
		Op:       wal.OpAddAnnotation,
		Ann:      string(a.ID),
		Author:   a.Author,
		Body:     a.Body,
		Kind:     a.Kind,
		AttachTo: tupleRefs(attachTo),
	}
}

func recDeleteTuple(id TupleID) *wal.Record {
	return &wal.Record{Op: wal.OpDeleteTuple, Tuple: tupleRef(id)}
}

func rowMutationRecord(m relational.RowMutation) *wal.Record {
	switch m.Kind {
	case relational.RowInsert:
		cells := make([]wal.Cell, len(m.Values))
		for i, v := range m.Values {
			cells[i] = valueCell(v)
		}
		return &wal.Record{Op: wal.OpInsertRow, Table: m.Table, Values: cells}
	case relational.RowDelete:
		return &wal.Record{Op: wal.OpDeleteRow, Tuple: wal.TupleRef{Table: m.Table, Key: m.Key}}
	default: // relational.RowUpdate
		return &wal.Record{
			Op:     wal.OpUpdateRow,
			Tuple:  wal.TupleRef{Table: m.Table, Key: m.Key},
			Column: m.Column,
			Value:  valueCell(m.Value),
		}
	}
}

func recSubmit(id AnnotationID, disc *Discovery, degraded bool, firstVID int64) *wal.Record {
	cands := make([]wal.CandidateRef, len(disc.Candidates))
	for i, c := range disc.Candidates {
		cands[i] = wal.CandidateRef{
			Tuple:      tupleRef(c.Tuple.ID),
			Confidence: c.Confidence,
			Evidence:   c.Evidence,
		}
	}
	return &wal.Record{
		Op:         wal.OpSubmit,
		Ann:        string(id),
		Focal:      tupleRefs(disc.Focal),
		Candidates: cands,
		Degraded:   degraded,
		FirstVID:   firstVID,
	}
}

func recVerdict(t *VerificationTask, accept bool) *wal.Record {
	return &wal.Record{
		Op:     wal.OpVerdict,
		Ann:    string(t.Annotation),
		Tuple:  tupleRef(t.Tuple),
		VID:    t.VID,
		Accept: accept,
	}
}

func recBounds(b Bounds) *wal.Record {
	return &wal.Record{Op: wal.OpSetBounds, Lower: b.Lower, Upper: b.Upper}
}

func recIngestEnqueue(j ingest.Job) *wal.Record {
	return &wal.Record{
		Op:       wal.OpIngestEnqueue,
		Ann:      string(j.Annotation),
		JobKind:  uint8(j.Kind),
		Priority: j.Priority,
		Seq:      j.Seq,
	}
}

func recIngestRetract(id AnnotationID) *wal.Record {
	return &wal.Record{Op: wal.OpIngestRetract, Ann: string(id)}
}

func recIngestDone(id AnnotationID) *wal.Record {
	return &wal.Record{Op: wal.OpIngestDone, Ann: string(id)}
}

// --- replay (wal.Record -> engine mutation) ---

// ReplayWAL applies the durable records in dir onto the engine, skipping
// segments already folded into the snapshot the engine was restored from
// (the snapshot's recorded WALSegment boundary; a fresh engine replays
// everything). It must run BEFORE AttachWAL — replaying through an
// attached log would re-log history. Torn or corrupt trailing records are
// discarded by the CRC framing (see wal.Replay); apply errors are counted,
// not fatal, because they are deterministic re-executions of operations
// that also failed live.
func (e *Engine) ReplayWAL(dir string, fsys vfs.FS) (wal.ReplayStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		return wal.ReplayStats{}, fmt.Errorf("nebula: ReplayWAL must run before AttachWAL")
	}
	return wal.Replay(dir, wal.ReplayConfig{FS: fsys, FromSegment: e.walBaseSegment},
		func(rec *wal.Record) error { return e.applyRecord(rec) })
}

// RecoverWAL is the boot sequence in one call: replay dir's durable suffix
// onto the engine, then open the log (always a fresh segment) and attach
// it. The replay stats are retained for WALStats. Callers that want the
// log truncated afterwards follow with Checkpoint.
func (e *Engine) RecoverWAL(dir string, opts wal.Options) (wal.ReplayStats, error) {
	stats, err := e.ReplayWAL(dir, opts.FS)
	if err != nil {
		return stats, err
	}
	l, err := wal.Open(dir, opts)
	if err != nil {
		return stats, err
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	e.attachWAL(l, fsys)
	e.wal.replayMu.Lock()
	e.wal.replay = stats
	e.wal.replayMu.Unlock()
	return stats, nil
}

// applyRecord replays one logged mutation. Caller holds e.mu in write
// mode. The apply paths are exactly the live mutation cores — record
// construction and durability are the only things the live wrappers add.
func (e *Engine) applyRecord(rec *wal.Record) error {
	switch rec.Op {
	case wal.OpAddAnnotation:
		a := &Annotation{
			ID:     AnnotationID(rec.Ann),
			Author: rec.Author,
			Body:   rec.Body,
			Kind:   rec.Kind,
		}
		return e.addAnnotation(a, refTuples(rec.AttachTo))

	case wal.OpDeleteTuple:
		_, _, err := e.deleteTuple(refTuple(rec.Tuple))
		return err

	case wal.OpInsertRow:
		t, ok := e.db.Table(rec.Table)
		if !ok {
			return fmt.Errorf("nebula: wal replay: unknown table %q", rec.Table)
		}
		values := make([]Value, len(rec.Values))
		for i, c := range rec.Values {
			values[i] = cellValue(c)
		}
		_, err := t.Insert(values)
		return err

	case wal.OpUpdateRow:
		t, ok := e.db.Table(rec.Tuple.Table)
		if !ok {
			return fmt.Errorf("nebula: wal replay: unknown table %q", rec.Tuple.Table)
		}
		return t.UpdateByKey(rec.Tuple.Key, rec.Column, cellValue(rec.Value))

	case wal.OpDeleteRow:
		t, ok := e.db.Table(rec.Tuple.Table)
		if !ok {
			return fmt.Errorf("nebula: wal replay: unknown table %q", rec.Tuple.Table)
		}
		if !t.DeleteByKey(rec.Tuple.Key) {
			return fmt.Errorf("nebula: wal replay: no tuple %s", refTuple(rec.Tuple))
		}
		return nil

	case wal.OpSubmit:
		// Pin the VID counter so replayed tasks get the identifiers the
		// recorded verdicts reference.
		e.manager.SetNextVID(rec.FirstVID)
		cands := make([]Candidate, 0, len(rec.Candidates))
		for _, c := range rec.Candidates {
			row, ok := e.db.Lookup(refTuple(c.Tuple))
			if !ok {
				return fmt.Errorf("nebula: wal replay: candidate tuple %s not in database", c.Tuple)
			}
			cands = append(cands, Candidate{Tuple: row, Confidence: c.Confidence, Evidence: c.Evidence})
		}
		submit := e.manager.Submit
		if rec.Degraded {
			submit = e.manager.SubmitDegraded
		}
		e.bumpMutEpochFor(AnnotationID(rec.Ann))
		_, err := submit(AnnotationID(rec.Ann), refTuples(rec.Focal), cands)
		return err

	case wal.OpVerdict:
		if _, ok := e.manager.Pending(rec.VID); ok {
			if rec.Accept {
				return e.verifyAttachment(rec.VID)
			}
			return e.rejectAttachment(rec.VID)
		}
		// The task's submission predates the snapshot this replay layers
		// on (pending tasks are process state, not snapshot state). A
		// rejection's only effect was deleting the pending entry — gone
		// already; an acceptance's durable side effects must be re-applied.
		if !rec.Accept {
			return nil
		}
		id := AnnotationID(rec.Ann)
		e.bumpMutEpochFor(id)
		return e.manager.ForceAccept(id, refTuple(rec.Tuple), e.store.Focal(id))

	case wal.OpSetBounds:
		return e.setBounds(Bounds{Lower: rec.Lower, Upper: rec.Upper})

	case wal.OpIngestEnqueue:
		// CDC never re-derives jobs during replay (the capture flag stays
		// off); the logged admissions ARE the queue. Force preserves the
		// recorded sequence so drain order matches the pre-crash queue.
		if e.ingest != nil {
			e.ingest.queue.Force(ingest.Job{
				Annotation: annotation.ID(rec.Ann),
				Kind:       ingest.Kind(rec.JobKind),
				Priority:   rec.Priority,
				Seq:        rec.Seq,
				EnqueuedAt: time.Now(),
			})
		}
		return nil

	case wal.OpIngestRetract:
		// Retraction is deterministic given the state the prior records
		// produced; re-applying a half-drained job's retraction is
		// idempotent.
		e.retractAnnotation(AnnotationID(rec.Ann))
		return nil

	case wal.OpIngestDone:
		if e.ingest != nil {
			e.ingest.queue.MarkDone(annotation.ID(rec.Ann))
		}
		return nil

	default:
		return fmt.Errorf("nebula: wal replay: unknown op %v", rec.Op)
	}
}

// --- checkpoint ---

// Checkpoint folds the engine's current state into a durable snapshot at
// path and truncates the WAL behind it: rotate to a fresh segment (under
// the state lock, so the sealed segments exactly cover the captured
// state), capture, write the snapshot (temp + fsync + atomic rename) with
// the rotation boundary recorded, then prune the covered segments. A crash
// at ANY point leaves a recoverable store: before the rename the old
// snapshot + full log still replay; after the rename but before the prune,
// the recorded boundary makes replay skip the already-folded segments.
//
// Without an attached WAL, Checkpoint degrades to SaveSnapshotFile.
func (e *Engine) Checkpoint(path string) error {
	b := e.wal
	if b == nil {
		return e.SaveSnapshotFile(path)
	}
	b.ckptMu.Lock()
	defer b.ckptMu.Unlock()

	e.mu.RLock()
	// Rotate excludes concurrent Append via the whole-group read lock
	// (every mutator, single-shard or not, holds at least one shard's
	// write lock); ckptMu excludes concurrent Rotate from another
	// checkpoint.
	if err := b.log.Rotate(); err != nil {
		e.mu.RUnlock()
		return fmt.Errorf("nebula: checkpoint rotate: %w", err)
	}
	boundary := b.log.ActiveSegment()
	snap, err := snapshot.Capture(e.snapshotState())
	// The disk-backed index tail is snapshotted under the same read lock:
	// the payload then covers exactly the captured state, which is what
	// lets restore skip the index rebuild when the generations match.
	payload, storeSeq := e.prepareStoreFlush()
	e.mu.RUnlock()
	if err != nil {
		return err
	}
	snap.WALSegment = boundary
	snap.StoreSeq = storeSeq
	if err := snapshot.SaveFileFS(b.fs, path, snap); err != nil {
		return err
	}
	// Flush the tail only once the paired snapshot is durable: a crash
	// in between leaves snapshot(N)+manifest(N-1), which restore treats
	// as a mismatch and rebuilds — never a silently stale index.
	e.completeStoreFlush(storeSeq, boundary, payload)
	b.checkpoints.Add(1)
	if err := b.log.PruneBefore(boundary); err != nil {
		// Stale segments cost disk, not correctness: the snapshot's
		// boundary makes replay skip them. Surface and continue.
		walLogf("nebula: wal prune after checkpoint: %v", err)
	}
	return nil
}

// WALStats describes the engine's durability state for observability
// surfaces (the /metrics exporter, nebulactl wal-info).
type WALStats struct {
	// Attached reports whether a WAL is bound to the engine.
	Attached bool
	// Mode is the fsync policy ("group", "always", "none").
	Mode string
	// Log is the log's counter snapshot.
	Log wal.Stats
	// Checkpoints counts successful Checkpoint calls on this engine.
	Checkpoints int64
	// Replay describes the boot-time recovery pass (zero when the engine
	// started fresh or was attached without RecoverWAL).
	Replay wal.ReplayStats
}

// WALStats returns a point-in-time snapshot of the WAL counters; the zero
// value when no WAL is attached.
func (e *Engine) WALStats() WALStats {
	b := e.wal
	if b == nil {
		return WALStats{}
	}
	b.replayMu.Lock()
	replay := b.replay
	b.replayMu.Unlock()
	return WALStats{
		Attached:    true,
		Mode:        b.log.Mode().String(),
		Log:         b.log.Stats(),
		Checkpoints: b.checkpoints.Load(),
		Replay:      replay,
	}
}

// CloseWAL syncs and closes the attached log and detaches it from the
// engine (further mutations are no longer logged). Part of graceful
// shutdown, after the final checkpoint.
func (e *Engine) CloseWAL() error {
	e.mu.Lock()
	b := e.wal
	e.wal = nil
	if b != nil {
		// Rebuild the row hook without the WAL leg; ingest CDC capture (if
		// enabled) must keep observing mutations after the log detaches.
		e.refreshRowHook()
	}
	e.mu.Unlock()
	if b == nil {
		return nil
	}
	return b.log.Close()
}
