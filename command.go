package nebula

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"nebula/internal/relational"
	"nebula/internal/sqlish"
)

// CommandResult is the outcome of one ExecCommand call: a message for
// commands, or a table for queries and listings.
type CommandResult struct {
	// Message summarizes command-style statements ("attachment v3
	// verified").
	Message string
	// Columns and Rows carry tabular results (SELECT, LIST PENDING,
	// DISCOVER, PROCESS).
	Columns []string
	Rows    [][]string
}

// ExecCommand parses and executes one statement of Nebula's extended SQL
// surface against the engine. Supported statements:
//
//	VERIFY ATTACHMENT <vid>        accept a pending verification task
//	REJECT ATTACHMENT <vid>        reject a pending verification task
//	LIST PENDING [LIMIT n]         show the pending-task system table
//	ANNOTATE <tbl> '<pk>' AS '<id>' BODY '<text>'
//	                               insert an annotation attached to a tuple
//	DISCOVER '<annotation-id>' [TIMEOUT ms] [MAX n] [CACHE ON|OFF|bytes]
//	                           [TRACE ON|OFF] [PLAN ON|OFF] [TOPK k]
//	                               run discovery, report candidates; TIMEOUT
//	                               bounds the run's wall clock (partial
//	                               candidates are reported when it fires),
//	                               MAX keeps only the n strongest candidates,
//	                               CACHE overrides result caching for
//	                               this run (a byte count resizes the
//	                               engine's cache budget), TRACE ON
//	                               appends the run's span tree to the result
//	                               message (observe-only), PLAN overrides
//	                               the cost-based planner, and TOPK keeps
//	                               the strongest k attachments
//	PROCESS '<annotation-id>' [TIMEOUT ms] [MAX n] [CACHE ON|OFF|bytes]
//	                          [TRACE ON|OFF] [PLAN ON|OFF] [TOPK k]
//	                               run discovery + verification routing under
//	                               the same governors; an interrupted run
//	                               submits nothing to verification
//	SELECT cols FROM tbl [WHERE col = lit [AND ...]] [WITH ANNOTATIONS]
//	                               query with optional annotation propagation
//
// The `VERIFY | REJECT ATTACHMENT` commands are the paper's §7 extension
// (the spelling ATTACHEMENT is accepted too); the rest round out the
// surface a curator needs to operate the engine without writing Go.
func (e *Engine) ExecCommand(command string) (*CommandResult, error) {
	stmt, err := sqlish.Parse(command)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch s := stmt.(type) {
	case *sqlish.VerifyStmt:
		if err := e.verifyAttachment(s.VID); err != nil {
			return nil, err
		}
		return &CommandResult{Message: fmt.Sprintf("attachment v%d verified", s.VID)}, nil
	case *sqlish.RejectStmt:
		if err := e.rejectAttachment(s.VID); err != nil {
			return nil, err
		}
		return &CommandResult{Message: fmt.Sprintf("attachment v%d rejected", s.VID)}, nil
	case *sqlish.ListPendingStmt:
		return e.execListPending(s)
	case *sqlish.AnnotateStmt:
		return e.execAnnotate(s)
	case *sqlish.DiscoverStmt:
		return e.execDiscover(s.ID, false, s.TimeoutMillis, s.MaxCandidates, s.Parallel, s.Cache, s.CacheBytes, s.Trace, s.Plan, s.TopK)
	case *sqlish.ProcessStmt:
		return e.execDiscover(s.ID, true, s.TimeoutMillis, s.MaxCandidates, s.Parallel, s.Cache, s.CacheBytes, s.Trace, s.Plan, s.TopK)
	case *sqlish.SelectStmt:
		return e.execSelect(s)
	default:
		return nil, fmt.Errorf("nebula: unsupported statement %T", stmt)
	}
}

func (e *Engine) execListPending(s *sqlish.ListPendingStmt) (*CommandResult, error) {
	res := &CommandResult{Columns: []string{"vid", "annotation", "tuple", "confidence", "evidence"}}
	tasks := e.manager.PendingTasks()
	if s.ByPriority {
		tasks = e.manager.PendingTasksByPriority()
	}
	for _, task := range tasks {
		if s.Limit > 0 && len(res.Rows) >= s.Limit {
			break
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("v%d", task.VID),
			string(task.Annotation),
			task.Tuple.String(),
			fmt.Sprintf("%.3f", task.Confidence),
			strings.Join(task.Evidence, " "),
		})
	}
	res.Message = fmt.Sprintf("%d pending task(s)", len(res.Rows))
	return res, nil
}

func (e *Engine) execAnnotate(s *sqlish.AnnotateStmt) (*CommandResult, error) {
	t, ok := e.db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("nebula: unknown table %q", s.Table)
	}
	pkCol, _ := t.Schema().Column(t.Schema().PrimaryKey)
	pk, err := relational.ParseValue(pkCol.Type, s.PK)
	if err != nil {
		return nil, fmt.Errorf("nebula: bad primary key literal: %w", err)
	}
	row, ok := t.GetByPK(pk)
	if !ok {
		return nil, fmt.Errorf("nebula: no %s tuple with %s = %q", s.Table, t.Schema().PrimaryKey, s.PK)
	}
	a := &Annotation{ID: AnnotationID(s.ID), Body: s.Body}
	if err := e.addAnnotation(a, []TupleID{row.ID}); err != nil {
		return nil, err
	}
	return &CommandResult{Message: fmt.Sprintf("annotation %q attached to %s", s.ID, row.ID)}, nil
}

func (e *Engine) execDiscover(id string, process bool, timeoutMillis int64, maxCandidates, parallel int, cacheMode string, cacheBytes int64, traced bool, planMode string, topK int) (*CommandResult, error) {
	ctx := context.Background()
	if timeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMillis)*time.Millisecond)
		defer cancel()
	}
	if cacheBytes > 0 {
		// `CACHE <bytes>` is the live-resize half of the governor: it
		// adjusts the engine's budget (the caller already holds e.mu).
		if err := e.setCacheLimit(cacheBytes); err != nil {
			return nil, err
		}
	}
	// Per-statement governance rides the same RequestOptions overlay the
	// serving layer uses; the engine's configuration is never touched.
	opts := RequestOptions{MaxCandidates: maxCandidates, Parallelism: parallel, Cache: cacheMode, Trace: traced, Plan: planMode, TopK: topK}.apply(e.opts)
	res := &CommandResult{Columns: []string{"tuple", "confidence", "evidence", "routing"}}
	var (
		disc    *Discovery
		outcome VerificationOutcome
		err     error
	)
	if process {
		disc, outcome, err = e.process(ctx, AnnotationID(id), opts)
	} else {
		disc, err = e.discoverByID(ctx, AnnotationID(id), opts)
	}
	interrupted := err != nil && (errors.Is(err, ErrCancelled) || errors.Is(err, ErrBudgetExceeded))
	if err != nil && !interrupted {
		return nil, err
	}
	routing := make(map[TupleID]string)
	for _, t := range outcome.Accepted {
		routing[t.Tuple] = "auto-accepted"
	}
	for _, t := range outcome.Pending {
		routing[t.Tuple] = fmt.Sprintf("pending v%d", t.VID)
	}
	for _, t := range outcome.Rejected {
		routing[t.Tuple] = "auto-rejected"
	}
	for _, c := range disc.Candidates {
		res.Rows = append(res.Rows, []string{
			c.Tuple.ID.String(), fmt.Sprintf("%.3f", c.Confidence),
			strings.Join(c.Evidence, " "), routing[c.Tuple.ID],
		})
	}
	switch {
	case interrupted:
		res.Message = fmt.Sprintf("interrupted (%v): %d partial candidates, nothing routed", err, len(disc.Candidates))
	case process:
		res.Message = fmt.Sprintf("%d candidates: %d accepted, %d pending, %d rejected",
			len(disc.Candidates), len(outcome.Accepted), len(outcome.Pending), len(outcome.Rejected))
	default:
		res.Message = fmt.Sprintf("%d candidates from %d queries", len(disc.Candidates), len(disc.Queries))
	}
	if degraded := disc.Degraded(); len(degraded) > 0 {
		res.Message += "; degraded: " + strings.Join(degraded, " | ")
	}
	if disc.Trace != nil {
		res.Message += "\ntrace:\n" + disc.Trace.String()
	}
	return res, nil
}

func (e *Engine) execSelect(s *sqlish.SelectStmt) (*CommandResult, error) {
	t, ok := e.db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("nebula: unknown table %q", s.Table)
	}
	schema := t.Schema()
	// Resolve projection.
	projected := s.Columns
	if len(projected) == 0 {
		projected = schema.ColumnNames()
	} else {
		for _, c := range projected {
			if _, ok := schema.ColumnIndex(c); !ok {
				return nil, fmt.Errorf("nebula: table %s has no column %q", s.Table, c)
			}
		}
	}
	// Build predicates with type coercion.
	q := StructuredQuery{Table: schema.Name}
	for _, cond := range s.Where {
		col, ok := schema.Column(cond.Column)
		if !ok {
			return nil, fmt.Errorf("nebula: table %s has no column %q", s.Table, cond.Column)
		}
		operand, err := relational.ParseValue(col.Type, cond.Value)
		if err != nil {
			return nil, fmt.Errorf("nebula: literal for %s: %w", cond.Column, err)
		}
		q.Predicates = append(q.Predicates, Predicate{Column: col.Name, Op: OpEq, Operand: operand})
	}

	res := &CommandResult{Columns: append([]string(nil), projected...)}
	if s.WithAnnotations {
		res.Columns = append(res.Columns, "annotations")
		prs, err := e.store.PropagateQuery(e.db, q, s.Columns)
		if err != nil {
			return nil, err
		}
		for _, pr := range prs {
			row := projectRow(pr.Row, projected)
			var anns []string
			for i, a := range pr.Annotations {
				if pr.Confidences[i] < 1 {
					anns = append(anns, fmt.Sprintf("%s(%.2f)", a.ID, pr.Confidences[i]))
				} else {
					anns = append(anns, string(a.ID))
				}
			}
			row = append(row, strings.Join(anns, ", "))
			res.Rows = append(res.Rows, row)
		}
	} else {
		rows, _, err := e.db.Select(q)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			res.Rows = append(res.Rows, projectRow(r, projected))
		}
	}
	res.Message = fmt.Sprintf("%d row(s)", len(res.Rows))
	return res, nil
}

func projectRow(r *Row, cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		v, _ := r.Get(c)
		out[i] = v.Str()
	}
	return out
}
