// Quickstart: the paper's Figure 1 scenario in ~60 lines of API calls.
//
// A biologist attaches a free-text comment to one gene. The comment also
// mentions two other genes the biologist never linked. Nebula analyzes the
// comment, generates keyword queries from its embedded references, finds
// the referenced tuples, and proposes the missing attachments.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nebula"
)

func main() {
	// 1. A relational database with one Gene table.
	db := nebula.NewDatabase()
	gt, err := db.CreateTable(&nebula.Schema{
		Name: "Gene",
		Columns: []nebula.Column{
			{Name: "GID", Type: nebula.TypeString, Indexed: true},
			{Name: "Name", Type: nebula.TypeString, Indexed: true},
			{Name: "Family", Type: nebula.TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range [][]nebula.Value{
		{nebula.String("JW0013"), nebula.String("grpC"), nebula.String("F1")},
		{nebula.String("JW0014"), nebula.String("groP"), nebula.String("F6")},
		{nebula.String("JW0019"), nebula.String("yaaB"), nebula.String("F3")},
	} {
		if _, err := gt.Insert(g); err != nil {
			log.Fatal(err)
		}
	}

	// 2. NebulaMeta: the Gene concept is referenced by GID or Name; GIDs
	// look like JW0000, names like yaaB.
	repo := nebula.NewMetaRepository(db, nil)
	if err := repo.AddConcept(&nebula.Concept{
		Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}},
	}); err != nil {
		log.Fatal(err)
	}
	if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{4}`); err != nil {
		log.Fatal(err)
	}
	if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "Name"}, `[a-z]{3}[A-Z]`); err != nil {
		log.Fatal(err)
	}

	// 3. The engine.
	engine, err := nebula.New(db, repo, nebula.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Alice annotates gene JW0019 — and mentions two other genes.
	yaaB, _ := gt.GetByPK(nebula.String("JW0019"))
	comment := &nebula.Annotation{
		ID:     "alice",
		Author: "alice",
		Body:   "From the exp, it seems this gene is correlated to JW0014 of grpC",
	}
	if err := engine.AddAnnotation(comment, []nebula.TupleID{yaaB.ID}); err != nil {
		log.Fatal(err)
	}

	// 5. Nebula proactively discovers the missing attachments.
	disc, outcome, err := engine.Process(comment.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Nebula generated %d keyword queries and %d predictions:\n",
		len(disc.Queries), len(disc.Candidates))
	for _, c := range disc.Candidates {
		fmt.Printf("  conf=%.2f  %s (%s)\n", c.Confidence,
			c.Tuple.MustGet("GID").Str(), c.Tuple.MustGet("Name").Str())
	}
	fmt.Printf("auto-accepted=%d pending=%d rejected=%d\n",
		len(outcome.Accepted), len(outcome.Pending), len(outcome.Rejected))

	// 6. The comment now propagates with queries touching those genes.
	results, err := engine.PropagateQuery(nebula.StructuredQuery{
		Table: "Gene",
		Predicates: []nebula.Predicate{
			{Column: "GID", Op: nebula.OpEq, Operand: nebula.String("JW0014")},
		},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range results {
		for i, a := range pr.Annotations {
			fmt.Printf("query on JW0014 carries annotation %q (conf %.2f)\n",
				a.ID, pr.Confidences[i])
		}
	}
}
