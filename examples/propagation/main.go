// Annotation propagation: the passive facility Nebula inherits from the
// underlying annotation management engine [18]. Annotations attached at row
// or cell granularity ride along with relational query answers; predicted
// (not yet verified) attachments propagate with their confidence so users
// can see the uncertainty.
//
// Run with: go run ./examples/propagation
package main

import (
	"fmt"
	"log"

	"nebula"
)

func main() {
	db := nebula.NewDatabase()
	gt, err := db.CreateTable(&nebula.Schema{
		Name: "Gene",
		Columns: []nebula.Column{
			{Name: "GID", Type: nebula.TypeString, Indexed: true},
			{Name: "Name", Type: nebula.TypeString, Indexed: true},
			{Name: "Length", Type: nebula.TypeInt},
			{Name: "Family", Type: nebula.TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range [][]nebula.Value{
		{nebula.String("JW0013"), nebula.String("grpC"), nebula.Int(1130), nebula.String("F1")},
		{nebula.String("JW0015"), nebula.String("insL"), nebula.Int(1112), nebula.String("F1")},
		{nebula.String("JW0018"), nebula.String("nhaA"), nebula.Int(1166), nebula.String("F1")},
		{nebula.String("JW0012"), nebula.String("yaaI"), nebula.Int(404), nebula.String("F1")},
	} {
		if _, err := gt.Insert(g); err != nil {
			log.Fatal(err)
		}
	}
	repo := nebula.NewMetaRepository(db, nil)
	if err := repo.AddConcept(&nebula.Concept{
		Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}},
	}); err != nil {
		log.Fatal(err)
	}
	engine, err := nebula.New(db, repo, nebula.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	row := func(pk string) nebula.TupleID {
		r, ok := gt.GetByPK(nebula.String(pk))
		if !ok {
			log.Fatalf("gene %s missing", pk)
		}
		return r.ID
	}

	// Row-level annotation on JW0013.
	if err := engine.AddAnnotation(&nebula.Annotation{
		ID: "flag-rounded", Body: "rounded flag: expression verified", Kind: "flag",
	}, []nebula.TupleID{row("JW0013"), row("JW0015"), row("JW0018")}); err != nil {
		log.Fatal(err)
	}
	// Cell-level annotation on JW0012's Length value.
	if err := engine.AddAnnotation(&nebula.Annotation{
		ID: "len-suspect", Body: "length 404 looks truncated", Kind: "comment",
	}, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := engine.Store().Attach(nebula.Attachment{
		Annotation: "len-suspect", Tuple: row("JW0012"), Column: "Length",
		Type: nebula.TrueAttachment,
	}); err != nil {
		log.Fatal(err)
	}
	// A predicted (unverified) attachment with estimated confidence.
	if _, err := engine.Store().Attach(nebula.Attachment{
		Annotation: "flag-rounded", Tuple: row("JW0012"),
		Type: nebula.PredictedAttachment, Confidence: 0.72,
	}); err != nil {
		log.Fatal(err)
	}

	// Query 1: SELECT * FROM Gene WHERE Family = 'F1' — everything
	// propagates, including the prediction with its confidence.
	fmt.Println("SELECT * FROM Gene WHERE Family='F1':")
	results, err := engine.PropagateQuery(nebula.StructuredQuery{
		Table: "Gene",
		Predicates: []nebula.Predicate{
			{Column: "Family", Op: nebula.OpEq, Operand: nebula.String("F1")},
		},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	printPropagated(results)

	// Query 2: annotations also ride along join results. Add a protein
	// table referencing genes and join it.
	pt, err := db.CreateTable(&nebula.Schema{
		Name: "Protein",
		Columns: []nebula.Column{
			{Name: "PID", Type: nebula.TypeString},
			{Name: "PName", Type: nebula.TypeString},
			{Name: "GeneID", Type: nebula.TypeString, Indexed: true},
		},
		PrimaryKey:  "PID",
		ForeignKeys: []nebula.ForeignKey{{Column: "GeneID", RefTable: "Gene", RefColumn: "GID"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pt.Insert([]nebula.Value{
		nebula.String("P1"), nebula.String("GrpCase"), nebula.String("JW0013"),
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSELECT * FROM Protein JOIN Gene (annotations from both sides):")
	joined, err := engine.PropagateJoin(
		nebula.StructuredQuery{Table: "Protein"},
		nebula.StructuredQuery{Table: "Gene"},
		nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, jr := range joined {
		fmt.Printf("  %s ⋈ %s\n", jr.Left.MustGet("PName").Str(), jr.Right.MustGet("Name").Str())
		for i, a := range jr.Annotations {
			fmt.Printf("      ↳ %s (conf %.2f)\n", a.ID, jr.Confidences[i])
		}
	}

	// Query 3: projecting only GID and Family — the cell-level annotation
	// on Length must NOT propagate.
	fmt.Println("\nSELECT GID, Family FROM Gene WHERE Family='F1':")
	results, err = engine.PropagateQuery(nebula.StructuredQuery{
		Table: "Gene",
		Predicates: []nebula.Predicate{
			{Column: "Family", Op: nebula.OpEq, Operand: nebula.String("F1")},
		},
	}, []string{"GID", "Family"})
	if err != nil {
		log.Fatal(err)
	}
	printPropagated(results)
}

func printPropagated(results []nebula.PropagatedRow) {
	for _, pr := range results {
		fmt.Printf("  %s %-5s", pr.Row.MustGet("GID").Str(), pr.Row.MustGet("Name").Str())
		if len(pr.Annotations) == 0 {
			fmt.Println("  (no annotations)")
			continue
		}
		fmt.Println()
		for i, a := range pr.Annotations {
			conf := ""
			if pr.Confidences[i] < 1 {
				conf = fmt.Sprintf(" [predicted, conf %.2f]", pr.Confidences[i])
			}
			fmt.Printf("      ↳ %s: %s%s\n", a.ID, a.Body, conf)
		}
	}
}
