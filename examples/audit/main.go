// Under-annotation audit: quantify how far an annotated database has
// drifted from its ideal state (§3's F_N/F_P metrics), then run Nebula's
// pipeline with *approximate focal-spreading search* and an expert queue to
// close the gap — the full Stage 0→3 loop on a database whose ACG is
// mature enough for spreading to pay off.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"
	"log"

	"nebula"
)

const (
	nGenes    = 400
	community = 20 // genes per research community
)

func gid(i int) string { return fmt.Sprintf("JW%05d", i) }

func main() {
	db, repo := buildDatabase()

	opts := nebula.DefaultOptions()
	opts.Spreading = true
	// K is fixed here. Automatic selection (SpreadingK = 0) trusts the hop
	// profile, which should be seeded from full-database searches first —
	// under spreading-only operation the profile never observes tuples
	// beyond the current K, so it can only shrink the radius.
	opts.SpreadingK = 3
	opts.RequireStableACG = true
	opts.ACGBatchSize = 50
	opts.ACGMu = 0.6
	opts.Bounds = nebula.Bounds{Lower: 0.25, Upper: 0.85}
	engine, err := nebula.New(db, repo, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 — historical curation: notes connect genes within their
	// community, giving the ACG locality and (eventually) stability.
	ideal := nebula.IdealEdges{}
	noteSeq := 0
	addNote := func(body string, tuples []nebula.TupleID) nebula.AnnotationID {
		id := nebula.AnnotationID(fmt.Sprintf("note:%04d", noteSeq))
		noteSeq++
		if err := engine.AddAnnotation(&nebula.Annotation{ID: id, Body: body, Kind: "note"}, tuples); err != nil {
			log.Fatal(err)
		}
		for _, t := range tuples {
			ideal[nebula.EdgeKey{Annotation: id, Tuple: t}] = struct{}{}
		}
		return id
	}
	// Each community's notes chain its genes: 0–3, 3–6, 6–9, 9–12, so the
	// ACG has real multi-hop structure for the spreading search to walk.
	for round := 0; round < 4; round++ {
		for c := 0; c < nGenes/community; c++ {
			base := c * community
			a := base + 3*round
			b := base + 3*round + 3
			addNote(fmt.Sprintf("genes %s and %s co-expressed", gid(a), gid(b)),
				[]nebula.TupleID{geneTuple(db, a), geneTuple(db, b)})
		}
	}
	fmt.Printf("historical curation: %d notes; ACG %d nodes / %d edges; stable=%v\n",
		noteSeq, engine.Graph().Nodes(), engine.Graph().Edges(), engine.Graph().Stable())

	// Phase 2 — audit: new notes arrive attached to a single gene while
	// referencing two community neighbors. The audit measures the drift.
	var newIDs []nebula.AnnotationID
	for c := 0; c < nGenes/community; c++ {
		base := c * community
		id := addNote(
			fmt.Sprintf("this gene interacts with %s and also %s under stress", gid(base+3), gid(base+9)),
			[]nebula.TupleID{geneTuple(db, base)})
		for _, g := range []int{base + 3, base + 9} {
			ideal[nebula.EdgeKey{Annotation: id, Tuple: geneTuple(db, g)}] = struct{}{}
		}
		newIDs = append(newIDs, id)
	}
	before := engine.Quality(ideal)
	fmt.Printf("\naudit: F_N=%.3f — %d of %d ideal attachments missing\n",
		before.FalseNegativeRatio, before.Missing, before.IdealEdges)

	// Phase 3 — proactive discovery with focal spreading. The profile is
	// empty at first, so K falls back to the default; as acceptances are
	// recorded, SelectK starts tracking the real hop distribution.
	var searched, fullRows, pending int
	for _, id := range newIDs {
		disc, outcome, err := engine.Process(id)
		if err != nil {
			log.Fatal(err)
		}
		searched += disc.ExecStats.SearchedDB
		fullRows += db.TotalRows()
		pending += len(outcome.Pending)
		// The expert clears this annotation's queue.
		if _, _, err := engine.ResolveWithOracle(id, nebula.IdealOracle(ideal)); err != nil {
			log.Fatal(err)
		}
	}
	after := engine.Quality(ideal)
	fmt.Printf("\nafter Nebula: F_N=%.3f F_P=%.3f\n", after.FalseNegativeRatio, after.FalsePositiveRatio)
	fmt.Printf("focal spreading searched %d tuples total vs %d for full scans (%.1f%%)\n",
		searched, fullRows, 100*float64(searched)/float64(fullRows))
	fmt.Printf("expert verified %d pending tasks\n", pending)

	p := engine.Profile()
	fmt.Printf("\nhop profile (%d observations):\n", p.Total())
	for h := 0; h <= p.MaxHops(); h++ {
		fmt.Printf("  %d hops: %3d  (coverage %.0f%%)\n", h, p.Bucket(h), 100*p.CoverageAt(h))
	}
	fmt.Printf("K for 90%% coverage: %d\n", p.SelectK(0.9, 3))
}

func buildDatabase() (*nebula.Database, *nebula.MetaRepository) {
	db := nebula.NewDatabase()
	gt, err := db.CreateTable(&nebula.Schema{
		Name: "Gene",
		Columns: []nebula.Column{
			{Name: "GID", Type: nebula.TypeString, Indexed: true},
			{Name: "Community", Type: nebula.TypeInt},
		},
		PrimaryKey: "GID",
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nGenes; i++ {
		if _, err := gt.Insert([]nebula.Value{
			nebula.String(gid(i)), nebula.Int(int64(i / community)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	repo := nebula.NewMetaRepository(db, nil)
	if err := repo.AddConcept(&nebula.Concept{
		Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}},
	}); err != nil {
		log.Fatal(err)
	}
	if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{5}`); err != nil {
		log.Fatal(err)
	}
	return db, repo
}

func geneTuple(db *nebula.Database, i int) nebula.TupleID {
	r, ok := db.MustTable("Gene").GetByPK(nebula.String(gid(i)))
	if !ok {
		log.Fatalf("gene %d missing", i)
	}
	return r.ID
}
