// Biocuration workflow: a curated biological database (genes, proteins,
// publications) where publications act as annotations — the workload the
// paper's introduction motivates.
//
// The example builds the database through the public API, wires an engine
// over the pre-annotated state, tunes the verification bounds on a training
// subset (the Figure 9 algorithm), inserts a batch of new articles attached
// to a single record each, and lets Nebula recover the references the
// curators never linked. A simulated domain expert works the pending-task
// queue, and the database's false-negative ratio is reported before/after.
//
// Run with: go run ./examples/biocuration
package main

import (
	"fmt"
	"log"

	"nebula"
)

const (
	genes    = 300
	proteins = 150
	articles = 400
)

func gid(i int) string { return fmt.Sprintf("JW%05d", i) }
func gname(i int) string {
	u := byte('A' + i%26)
	i /= 26
	return string([]byte{byte('a' + (i/676)%26), byte('a' + (i/26)%26), byte('a' + i%26), u})
}
func pid(i int) string { return fmt.Sprintf("P%05d", i) }

func main() {
	db, repo := buildDatabase()
	engine, err := nebula.New(db, repo, nebula.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Seed the engine with existing curation: each base article is attached
	// to the 3 genes it discusses, building up the ACG. The ideal edge set
	// tracks every relationship, including the ones curators will "forget".
	ideal := nebula.IdealEdges{}
	for i := 0; i < articles; i++ {
		g1, g2, g3 := (i*7)%genes, (i*7+1)%genes, (i*7+2)%genes
		a := &nebula.Annotation{
			ID:   nebula.AnnotationID(fmt.Sprintf("art:%03d", i)),
			Kind: "article",
			Body: fmt.Sprintf("study of gene %s and %s and %s expression", gid(g1), gid(g2), gid(g3)),
		}
		tuples := []nebula.TupleID{geneTuple(db, g1), geneTuple(db, g2), geneTuple(db, g3)}
		if err := engine.AddAnnotation(a, tuples); err != nil {
			log.Fatal(err)
		}
		for _, t := range tuples {
			ideal[nebula.EdgeKey{Annotation: a.ID, Tuple: t}] = struct{}{}
		}
	}

	// Tune the verification bounds on a training sample of the curated
	// articles (Figure 9): distort each to one attachment, rediscover, and
	// pick the β bounds minimizing expert effort under quality ceilings.
	var training []nebula.TrainingExample
	for i := 0; i < 30; i++ {
		id := nebula.AnnotationID(fmt.Sprintf("art:%03d", i))
		a, _ := engine.Store().Get(id)
		training = append(training, nebula.TrainingExample{
			Annotation: a,
			Ideal:      engine.Store().Focal(id),
		})
	}
	bounds, _, err := engine.TuneBounds(training, nebula.DefaultBoundsConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned verification bounds: [%.2f, %.2f]\n", bounds.Lower, bounds.Upper)
	fmt.Println("(this corpus is cleanly separable, so BoundsSetting found fully")
	fmt.Println(" automatic bounds — zero expert effort within the quality ceilings)")
	fmt.Println()

	// New under-annotated articles arrive: each is attached to one gene but
	// references three more genes and a protein.
	var newIDs []nebula.AnnotationID
	for i := 0; i < 10; i++ {
		g0, g1, g2, g3 := (i*11)%genes, (i*11+5)%genes, (i*11+9)%genes, (i*11+13)%genes
		p := (i * 3) % proteins
		a := &nebula.Annotation{
			ID:   nebula.AnnotationID(fmt.Sprintf("new:%02d", i)),
			Kind: "article",
			Body: fmt.Sprintf("we found gene %s regulated by %s and %s and protein %s binding",
				gid(g1), gid(g2), gname(g3), pid(p)),
		}
		if err := engine.AddAnnotation(a, []nebula.TupleID{geneTuple(db, g0)}); err != nil {
			log.Fatal(err)
		}
		for _, t := range []nebula.TupleID{geneTuple(db, g0), geneTuple(db, g1),
			geneTuple(db, g2), geneTuple(db, g3), proteinTuple(db, p)} {
			ideal[nebula.EdgeKey{Annotation: a.ID, Tuple: t}] = struct{}{}
		}
		newIDs = append(newIDs, a.ID)
	}

	before := engine.Quality(ideal)
	fmt.Printf("before discovery: F_N=%.3f (%d attachments missing)\n",
		before.FalseNegativeRatio, before.Missing)

	// Nebula processes each new annotation; the expert (simulated by the
	// ideal edge set) resolves the pending queue.
	oracle := nebula.IdealOracle(ideal)
	var accepted, pendingSeen int
	for _, id := range newIDs {
		_, outcome, err := engine.Process(id)
		if err != nil {
			log.Fatal(err)
		}
		accepted += len(outcome.Accepted)
		pendingSeen += len(outcome.Pending)
		if _, _, err := engine.ResolveWithOracle(id, oracle); err != nil {
			log.Fatal(err)
		}
	}
	after := engine.Quality(ideal)
	fmt.Printf("after discovery:  F_N=%.3f F_P=%.3f\n", after.FalseNegativeRatio, after.FalsePositiveRatio)
	fmt.Printf("auto-accepted %d predictions; expert reviewed %d pending tasks\n",
		accepted, pendingSeen)
	fmt.Printf("ACG grew to %d nodes / %d edges; hop profile has %d observations\n",
		engine.Graph().Nodes(), engine.Graph().Edges(), engine.Profile().Total())
}

func buildDatabase() (*nebula.Database, *nebula.MetaRepository) {
	db := nebula.NewDatabase()
	gt, err := db.CreateTable(&nebula.Schema{
		Name: "Gene",
		Columns: []nebula.Column{
			{Name: "GID", Type: nebula.TypeString, Indexed: true},
			{Name: "Name", Type: nebula.TypeString, Indexed: true},
			{Name: "Family", Type: nebula.TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	})
	if err != nil {
		log.Fatal(err)
	}
	pt, err := db.CreateTable(&nebula.Schema{
		Name: "Protein",
		Columns: []nebula.Column{
			{Name: "PID", Type: nebula.TypeString, Indexed: true},
			{Name: "PName", Type: nebula.TypeString, Indexed: true},
			{Name: "GeneID", Type: nebula.TypeString, Indexed: true},
		},
		PrimaryKey:  "PID",
		ForeignKeys: []nebula.ForeignKey{{Column: "GeneID", RefTable: "Gene", RefColumn: "GID"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < genes; i++ {
		if _, err := gt.Insert([]nebula.Value{
			nebula.String(gid(i)), nebula.String(gname(i)),
			nebula.String(fmt.Sprintf("F%d", i%12)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < proteins; i++ {
		if _, err := pt.Insert([]nebula.Value{
			nebula.String(pid(i)),
			nebula.String(fmt.Sprintf("Prot%02din", i%99)),
			nebula.String(gid(i % genes)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.ValidateForeignKeys(); err != nil {
		log.Fatal(err)
	}

	repo := nebula.NewMetaRepository(db, nil)
	must(repo.AddConcept(&nebula.Concept{
		Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}},
	}))
	must(repo.AddConcept(&nebula.Concept{
		Name: "Protein", Table: "Protein", ReferencedBy: [][]string{{"PID"}, {"PName"}},
	}))
	must(repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{5}`))
	must(repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "Name"}, `[a-z]{3}[A-Z]`))
	must(repo.SetPattern(nebula.ColumnRef{Table: "Protein", Column: "PID"}, `P[0-9]{5}`))
	must(repo.SetPattern(nebula.ColumnRef{Table: "Protein", Column: "PName"}, `Prot[0-9]{2}in`))
	return db, repo
}

func geneTuple(db *nebula.Database, i int) nebula.TupleID {
	r, ok := db.MustTable("Gene").GetByPK(nebula.String(gid(i)))
	if !ok {
		log.Fatalf("gene %d missing", i)
	}
	return r.ID
}

func proteinTuple(db *nebula.Database, i int) nebula.TupleID {
	r, ok := db.MustTable("Protein").GetByPK(nebula.String(pid(i)))
	if !ok {
		log.Fatalf("protein %d missing", i)
	}
	return r.ID
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
