package nebula

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/cache"
	"nebula/internal/discovery"
	"nebula/internal/ingest"
	"nebula/internal/keyword"
	"nebula/internal/relational"
	"nebula/internal/segment"
	"nebula/internal/shard"
	"nebula/internal/sigmap"
	"nebula/internal/trace"
	"nebula/internal/verification"
)

// Typed pipeline errors, re-exported for callers that match with
// errors.Is. ErrInternal wraps a panic recovered at the Engine's public
// boundary: one poisoned annotation (or a bug underneath it) surfaces as an
// error on its own call instead of taking down the serving process.
var (
	// ErrCancelled reports a run interrupted by caller cancellation;
	// partial candidates accompany it on the returned Discovery.
	ErrCancelled = discovery.ErrCancelled
	// ErrBudgetExceeded reports a run stopped by its wall-clock budget;
	// partial candidates accompany it on the returned Discovery.
	ErrBudgetExceeded = discovery.ErrBudgetExceeded
	// ErrSpamAnnotation flags an annotation referencing an implausible
	// share of the database (see Options.SpamFraction). The concrete
	// error is a *discovery.SpamError carrying the candidate count.
	ErrSpamAnnotation = discovery.ErrSpamAnnotation
	// ErrInternal wraps a recovered panic.
	ErrInternal = errors.New("nebula: internal error")
	// ErrUnknownAnnotation reports an ID with no stored annotation. Serving
	// layers match it with errors.Is to answer 404 instead of 500.
	ErrUnknownAnnotation = errors.New("nebula: unknown annotation")
)

// recoverPanic converts a panic into an ErrInternal on the method's error
// return. Deferred at every public entry point that runs annotation-driven
// pipeline code.
func recoverPanic(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: panic: %v\n%s", ErrInternal, r, debug.Stack())
	}
}

// Engine is the proactive annotation manager: it owns the annotation store,
// the ACG, the hop profile, and the verification pipeline, and orchestrates
// the three processing stages of Figure 16 on top of a relational database
// and a NebulaMeta repository.
//
// All Engine methods are safe for concurrent use. Operations synchronize on
// a hash-sharded readers–writer lock group (Options.Shards): discovery
// (Stages 1–2), snapshot capture, and the pending/bounds accessors are
// read-only against engine state and run concurrently with each other, while
// whole-engine mutations (raw relational mutations, Stage-3 verification
// routing, expert decisions, deletions) take every shard's lock exclusively
// in ascending order. Single-annotation writes (AddAnnotation,
// AddAnnotationAsync, EnqueueDiscovery) take only the annotation's home
// shard, so writers against different shards proceed concurrently and
// invalidate only their own shard's cached discoveries. With Shards <= 1 the
// group degenerates to the engine's historical single RWMutex. The
// underlying database, store, and graph returned by the accessors are NOT
// independently synchronized — mutate them through the engine, or only
// before sharing the engine across goroutines.
type Engine struct {
	mu *shard.Group

	db      *Database
	meta    *MetaRepository
	store   *AnnotationStore
	graph   *ACG
	profile *HopProfile
	manager *verification.Manager
	opts    Options

	// symMu guards symbolEngine independently of mu: the lazy index build
	// is a mutation that happens on the (read-locked) discovery path, so it
	// cannot hide behind the RW lock's read side.
	symMu sync.Mutex
	// symbolEngine caches the pre-built index of the symbol-table search
	// technique for the full database. It is built lazily on first use and
	// invalidated only by RefreshSearchIndex — index-first techniques go
	// stale as data changes, which is exactly their documented trade-off.
	symbolEngine *keyword.SymbolTableEngine

	// discCache memoizes whole clean discovery runs keyed by annotation
	// body + focal + options fingerprint. Nil when caching is disabled.
	queryCache *keyword.QueryCache
	discCache  *cache.LRU[*Discovery]

	// wal, when non-nil, is the write-ahead log binding: mutations append
	// a record under the write lock before applying, and fsync (with
	// group-commit absorption) after releasing it. Written by AttachWAL
	// under the write lock, read without it on the commit path — attach
	// before sharing the engine across goroutines.
	wal *walBinding
	// walBaseSegment is the first WAL segment NOT folded into the snapshot
	// this engine was restored from; ReplayWAL skips earlier segments.
	// Zero (fresh engines, pre-WAL snapshots) replays everything.
	walBaseSegment uint64

	// manualFocal remembers each annotation's manual Stage-0 attachments
	// (the attachTo of its AddAnnotation) — the state re-discovery
	// retraction preserves. Accepted predictions become TrueAttachments in
	// the store and are indistinguishable there from manual ones; this map
	// is what keeps them distinguishable. Readers hold mu (all shards);
	// the one writer reachable under a single shard lock (addAnnotation)
	// additionally holds manualMu, so concurrent home-shard writers on
	// different shards cannot race the map.
	manualFocal map[AnnotationID][]TupleID
	// manualMu serializes manualFocal map writes from single-shard
	// mutation paths. Whole-engine paths already exclude each other via mu.
	manualMu sync.Mutex
	// ingest, when non-nil, is the streaming proactive pipeline: the
	// bounded discovery job queue plus change-data-capture state (see
	// Options.Ingest and ingest.go). Guarded by mu.
	ingest *ingestState

	// segStore and tiered, when non-nil, are the disk-backed substrate for
	// the symbol-table search technique (Options.Store): immutable mmap'd
	// segment files plus the in-heap tail that absorbs changes. Both are
	// set during construction and never reassigned, so reads need no lock;
	// the structures synchronize internally.
	segStore *segment.Store
	tiered   *keyword.TieredEngine
	// storeFlushMu serializes flush generations (checkpoint tail flushes
	// and operator FlushStore calls) against each other.
	storeFlushMu sync.Mutex
	// storeSeq is the generation of the last successful segment flush —
	// the value stamped into both the snapshot and the manifest so restore
	// can tell whether the segments on disk pair with the snapshot.
	storeSeq atomic.Uint64
}

// New creates an engine with a fresh annotation store and ACG.
func New(db *Database, repo *MetaRepository, opts Options) (*Engine, error) {
	return NewWithState(db, repo, annotation.NewStore(),
		acg.New(opts.ACGBatchSize, opts.ACGMu), opts)
}

// NewWithState creates an engine over an existing annotation store and ACG
// — the path used when Nebula is layered on an already-annotated database
// (e.g. the experimental datasets, where the base publications pre-populate
// both structures).
func NewWithState(db *Database, repo *MetaRepository, store *AnnotationStore, graph *ACG, opts Options) (*Engine, error) {
	return newWithState(db, repo, store, graph, opts, 0)
}

// newWithState is NewWithState plus the expected disk-store generation:
// 0 for fresh engines (any existing segments in Options.Store.Dir belong
// to unknown history and only serve as verified-hit shortcuts), the
// snapshot's StoreSeq on the restore path (matching segments then carry
// the index without a rebuild).
func newWithState(db *Database, repo *MetaRepository, store *AnnotationStore, graph *ACG, opts Options, storeSeq uint64) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if db == nil || repo == nil || store == nil || graph == nil {
		return nil, fmt.Errorf("nebula: nil dependency")
	}
	profile := acg.NewProfile()
	manager, err := verification.NewManager(store, graph, profile, verification.Bounds(opts.Bounds))
	if err != nil {
		return nil, err
	}
	e := &Engine{
		mu:          shard.NewGroup(opts.Shards),
		db:          db,
		meta:        repo,
		store:       store,
		graph:       graph,
		profile:     profile,
		manager:     manager,
		opts:        opts,
		manualFocal: make(map[AnnotationID][]TupleID),
	}
	// Pre-populated stores (restored snapshots without manual-focal data,
	// layered datasets) default every existing true attachment to manual:
	// re-discovery then never retracts pre-existing state it cannot
	// classify. RestoreEngine overwrites this with the snapshotted map.
	for _, id := range store.IDs() {
		if focal := store.Focal(id); len(focal) > 0 {
			e.manualFocal[id] = focal
		}
	}
	if opts.Ingest.Enabled {
		e.ingest = &ingestState{
			queue:   ingest.New(opts.Ingest.queueCap()),
			cdcHops: opts.Ingest.cdcHops(),
		}
		e.refreshRowHook()
	}
	if opts.Store.Enabled() {
		if err := e.openStore(storeSeq); err != nil {
			return nil, err
		}
	}
	if !opts.Cache.Disabled {
		// The byte budget splits evenly across the three LRU layers (the
		// keyword layer further splits its share between results and
		// mapping memos). Engines are rebuilt on snapshot restore, so a
		// Load always starts from cold, coherent caches.
		per := opts.Cache.bytes() / 3
		db.EnableScanCache(per)
		e.queryCache = keyword.NewQueryCache(per)
		e.discCache = cache.New[*Discovery](per)
	}
	return e, nil
}

// DB returns the engine's database. Tables are not internally
// synchronized: mutating rows through this handle while the engine is
// serving concurrent requests races them — use MutateDB for that.
func (e *Engine) DB() *Database { return e.db }

// MutateDB runs fn against the engine's database under the engine's
// write lock, making raw relational mutations (Insert/Delete/Update)
// exclusive with concurrent discoveries and snapshot captures. Table
// epochs advance on mutation, so caches derived from the changed rows
// invalidate without further bookkeeping. With a WAL attached, every row
// operation fn commits is captured and logged; the call returns only once
// the captured records are durable.
func (e *Engine) MutateDB(fn func(db *Database) error) error {
	var wb *walBinding
	err := func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		wb = e.wal
		if e.wal != nil {
			e.wal.captureActive, e.wal.captureErr = true, nil
			defer func() {
				e.wal.captureActive, e.wal.captureErr = false, nil
			}()
		}
		if e.ingest != nil {
			e.ingest.beginCapture()
		}
		err := fn(e.db)
		if err == nil && e.wal != nil {
			// A failed append mid-fn leaves later row ops unlogged; the
			// log is poisoned by the failure, so the caller gets an error
			// and the process must restart into replay (fail-stop).
			err = e.wal.captureErr
		}
		if e.ingest != nil {
			// Change-data-capture: the committed row mutations seed the
			// K-hop ACG query that decides which prior attachments need
			// re-discovery. Runs only on success — a failed fn may have
			// applied some rows, but their WAL records (and therefore the
			// replayed state) end at the failure point.
			changed := e.ingest.endCapture()
			if err == nil && len(changed) > 0 {
				_, err = e.enqueueAffectedLocked(changed)
			}
		}
		return err
	}()
	return wb.commit(err)
}

// Meta returns the NebulaMeta repository.
func (e *Engine) Meta() *MetaRepository { return e.meta }

// Store returns the annotation store.
func (e *Engine) Store() *AnnotationStore { return e.store }

// Graph returns the ACG.
func (e *Engine) Graph() *ACG { return e.graph }

// Profile returns the hop-distance profile.
func (e *Engine) Profile() *HopProfile { return e.profile }

// Shards returns the engine's shard count (always >= 1; Options.Shards
// values of 0 and 1 both select the single-shard layout).
func (e *Engine) Shards() int { return e.mu.Shards() }

// Options returns the engine's configuration.
func (e *Engine) Options() Options {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts
}

// SetBounds replaces the verification thresholds.
func (e *Engine) SetBounds(b Bounds) error {
	var wb *walBinding
	err := func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		wb = e.wal
		if err := e.walAppend(recBounds(b)); err != nil {
			return err
		}
		return e.setBounds(b)
	}()
	return wb.commit(err)
}

func (e *Engine) setBounds(b Bounds) error {
	if err := e.manager.SetBounds(verification.Bounds(b)); err != nil {
		return err
	}
	e.opts.Bounds = b
	return nil
}

// Bounds returns the current verification thresholds.
func (e *Engine) Bounds() Bounds {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return Bounds(e.manager.Bounds())
}

// AddAnnotation inserts a new annotation with its manual (true)
// attachments — Stage 0. The attachments become the annotation's focal and
// are wired into the ACG. It locks only the annotation's home shard, so
// concurrent adds homed on different shards proceed in parallel; the store,
// graph, and WAL serialize their own internal mutations.
func (e *Engine) AddAnnotation(a *Annotation, attachTo []TupleID) error {
	var wb *walBinding
	err := func() error {
		home := e.mu.Home(string(a.ID))
		e.mu.LockShard(home)
		defer e.mu.UnlockShard(home)
		wb = e.wal
		if err := e.walAppend(recAddAnnotation(a, attachTo)); err != nil {
			return err
		}
		return e.addAnnotation(a, attachTo)
	}()
	return wb.commit(err)
}

// addAnnotation is AddAnnotation's locked core, shared with WAL replay and
// the async ingest path. Callers hold either the whole lock group or the
// annotation's home shard exclusively; under a single shard lock the
// database is read-only to everyone else (relational mutations take all
// shards), and the store/graph/manualFocal writes below serialize through
// their own mutexes against adds homed elsewhere.
func (e *Engine) addAnnotation(a *Annotation, attachTo []TupleID) error {
	for _, t := range attachTo {
		if _, ok := e.db.Lookup(t); !ok {
			return fmt.Errorf("nebula: attach target %s not in database", t)
		}
	}
	if err := e.store.Add(a); err != nil {
		return err
	}
	e.bumpMutEpochFor(a.ID)
	for _, t := range attachTo {
		if _, err := e.store.Attach(annotation.Attachment{
			Annotation: a.ID, Tuple: t, Type: annotation.TrueAttachment,
		}); err != nil {
			return err
		}
	}
	e.graph.AddAnnotation(a.ID, attachTo)
	// Remember the manual focal: re-discovery retraction keeps exactly
	// these attachments. Recorded in the core so OpAddAnnotation replay
	// rebuilds the same map.
	e.manualMu.Lock()
	e.manualFocal[a.ID] = append([]TupleID(nil), attachTo...)
	e.manualMu.Unlock()
	return nil
}

// DeleteTuple removes a data tuple with full referential integrity: the
// row leaves its table, every attachment touching it is detached, its ACG
// node (and edges) disappear, and pending verification tasks targeting it
// are cancelled. It reports the numbers of detached attachments and
// cancelled tasks. Deleting an unknown tuple is an error.
//
// Under the symbol-table search technique the pre-built index goes stale;
// call RefreshSearchIndex afterwards (or rely on the next rebuild).
func (e *Engine) DeleteTuple(id TupleID) (detached, cancelled int, err error) {
	var wb *walBinding
	detached, cancelled, err = func() (int, int, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		wb = e.wal
		// Change-data-capture must read the ACG neighborhood BEFORE the
		// cascade removes the tuple's node and edges.
		var affected []AnnotationID
		if e.ingest != nil {
			affected = e.graph.AffectedAnnotations([]TupleID{id}, e.ingest.cdcHops)
		}
		if err := e.walAppend(recDeleteTuple(id)); err != nil {
			return 0, 0, err
		}
		d, c, err := e.deleteTuple(id)
		if err == nil && e.ingest != nil {
			for _, a := range affected {
				if _, ok := e.store.Get(a); !ok {
					continue // the cascade removed the annotation's last state
				}
				if _, qerr := e.enqueueJobLocked(a, ingest.KindRediscover, 0); qerr != nil && !errors.Is(qerr, ErrIngestQueueFull) {
					return d, c, qerr
				}
			}
		}
		return d, c, err
	}()
	err = wb.commit(err)
	return detached, cancelled, err
}

// deleteTuple is DeleteTuple's locked core, shared with WAL replay. The
// MutateDB row hook does not fire here (capture is only active inside
// MutateDB), so the single OpDeleteTuple record owns the whole cascade.
func (e *Engine) deleteTuple(id TupleID) (detached, cancelled int, err error) {
	t, ok := e.db.Table(id.Table)
	if !ok {
		return 0, 0, fmt.Errorf("nebula: unknown table %q", id.Table)
	}
	if !t.DeleteByKey(id.Key) {
		return 0, 0, fmt.Errorf("nebula: no tuple %s", id)
	}
	// A deleted tuple may have appeared in any annotation's discovery, so
	// every shard's cached results must die.
	e.bumpMutEpochAll()
	// The tuple can no longer be anyone's manual attachment; prune it from
	// the manual-focal lists before the store cascade forgets who touched
	// it.
	for _, att := range e.store.TupleAnnotations(id, annotation.TrueAttachment) {
		focal := e.manualFocal[att.Annotation]
		for i, t := range focal {
			if t == id {
				e.manualFocal[att.Annotation] = append(focal[:i:i], focal[i+1:]...)
				break
			}
		}
		if len(e.manualFocal[att.Annotation]) == 0 {
			delete(e.manualFocal, att.Annotation)
		}
	}
	detached = e.store.DetachTuple(id)
	e.graph.RemoveTuple(id)
	cancelled = e.manager.CancelTasksForTuple(id)
	return detached, cancelled, nil
}

// Discovery is the result of running Stages 1–2 on one annotation.
type Discovery struct {
	// Queries are the generated keyword queries.
	Queries []KeywordQuery
	// Candidates are the predicted attachments, strongest first.
	Candidates []Candidate
	// Focal is the annotation's focal used for the run.
	Focal []TupleID
	// GenStats reports Stage 1 phase timings and counts.
	GenStats GenerationStats
	// ExecStats reports Stage 2 cost counters.
	ExecStats DiscoveryStats
	// Trace is the request-scoped span tree for this run when tracing was
	// requested (Options.Trace / RequestOptions.Trace); nil otherwise.
	// Observe-only: its presence never changes the other fields.
	Trace *TraceNode
}

// Degraded lists every way the run deviated from the full, unbounded
// pipeline, across both stages: query-budget truncation, scan-budget
// exhaustion, deadline interruption, unstable-ACG spreading fallback,
// retried transient faults. Empty means the run is exactly what the
// ungoverned algorithm would have produced; non-empty candidate sets are
// never auto-accepted by Process.
func (d *Discovery) Degraded() []string {
	if len(d.GenStats.Degraded) == 0 {
		return d.ExecStats.Degraded
	}
	out := make([]string, 0, len(d.GenStats.Degraded)+len(d.ExecStats.Degraded))
	out = append(out, d.GenStats.Degraded...)
	return append(out, d.ExecStats.Degraded...)
}

// Discover runs Stages 1 and 2 for a stored annotation: signature maps →
// keyword queries → execution with the engine's configured refinements.
func (e *Engine) Discover(id AnnotationID) (*Discovery, error) {
	return e.DiscoverContext(context.Background(), id)
}

// DiscoverContext is Discover under governance: the run honors ctx (checked
// at per-query and per-tuple-batch granularity) and the engine's
// Options.Budget. On cancellation or deadline it returns the partial
// Discovery produced so far together with a typed ErrCancelled/
// ErrBudgetExceeded; count budgets degrade the run (see Discovery.Degraded)
// without error. With a background context and a zero budget it is
// byte-identical to Discover.
func (e *Engine) DiscoverContext(ctx context.Context, id AnnotationID) (d *Discovery, err error) {
	return e.DiscoverRequest(ctx, id, RequestOptions{})
}

// DiscoverRequest is DiscoverContext with per-request governance: the
// serializable RequestOptions overlay the engine's configured budget and
// parallelism for this one run. Discovery is read-only against engine
// state, so concurrent DiscoverRequest calls proceed in parallel under the
// engine's read lock.
func (e *Engine) DiscoverRequest(ctx context.Context, id AnnotationID, req RequestOptions) (d *Discovery, err error) {
	defer recoverPanic(&err)
	if err := req.Validate(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.discoverByID(ctx, id, req.apply(e.opts))
}

func (e *Engine) discoverByID(ctx context.Context, id AnnotationID, opts Options) (*Discovery, error) {
	a, ok := e.store.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownAnnotation, id)
	}
	return e.discover(ctx, a, e.store.Focal(id), opts)
}

// discover is the focal- and options-parameterized core, shared with bounds
// training and the per-request serving surface. Callers must hold e.mu (in
// read or write mode); the run touches engine state only through reads.
func (e *Engine) discover(ctx context.Context, a *Annotation, focal []TupleID, opts Options) (disc *Discovery, err error) {
	if opts.Trace {
		// Root the span tree here unless a caller (process) already owns
		// one, in which case this run is a child and the owner snapshots.
		span := trace.FromContext(ctx)
		ownsRoot := span == nil
		if ownsRoot {
			span = trace.New("discover")
		} else {
			span = span.StartChild("discover")
		}
		ctx = trace.WithSpan(ctx, span)
		defer func() {
			span.End()
			if ownsRoot && disc != nil {
				disc.Trace = span.Snapshot()
			}
		}()
	}
	if opts.Budget.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget.Deadline)
		defer cancel()
	}
	k := opts.SpreadingK
	if opts.Spreading && k <= 0 {
		k = e.profile.SelectK(opts.SpreadingCoverage, 3)
	}
	// Whole-pipeline memoization. Scan budgets force uncached runs (their
	// results depend on scan order and stats must reflect actual work), and
	// injected searcher factories are opaque — their behavior cannot be
	// fingerprinted into a key.
	useCache := e.discCache != nil && !opts.Cache.Disabled &&
		opts.SearcherFactory == nil && opts.Budget.MaxSearchedRows == 0
	var cacheKey string
	var epoch uint64
	if useCache {
		cacheKey = discoveryCacheKey(a.Body, focal, opts, k)
		home := e.mu.Home(string(a.ID))
		if !graphDependent(opts) {
			// Annotation-local runs live in a per-shard epoch domain; the
			// shard tag keeps entries from ever being probed under another
			// shard's counter (two annotations can share a body).
			cacheKey = fmt.Sprintf("s%d|%s", home, cacheKey)
		}
		epoch = e.cacheEpochFor(home, opts)
		if hit, ok := e.discCache.Get(cacheKey, epoch); ok {
			trace.FromContext(ctx).Add("discovery_cache_hits", 1)
			out := &Discovery{
				Queries:    hit.Queries,
				Candidates: append([]Candidate(nil), hit.Candidates...),
				Focal:      focal,
				GenStats:   hit.GenStats,
				// Stats account actual work: a short-circuited run scanned
				// nothing; it only records itself as one discovery-cache hit.
				ExecStats: DiscoveryStats{
					Candidates: len(hit.Candidates),
					Exec:       keyword.ExecStats{CacheHits: 1},
				},
			}
			return out, nil
		}
	}
	gen := sigmap.NewGenerator(e.meta, opts.Epsilon)
	gen.Alpha = opts.Alpha
	gen.MaxQueries = opts.Budget.MaxQueries
	gspan, gctx := trace.StartSpan(ctx, "generate")
	queries, genStats := gen.GenerateContext(gctx, a.Body)
	gspan.AddInt("queries", len(queries))
	gspan.End()

	d := discovery.New(e.db, e.meta, e.graph)
	d.IncludeRelated = opts.IncludeRelated
	d.Uncached = opts.Cache.Disabled || opts.Budget.MaxSearchedRows > 0
	if !d.Uncached {
		d.Cache = e.queryCache
	}
	switch {
	case opts.SearcherFactory != nil:
		d.NewSearcher = opts.SearcherFactory
	case opts.SearchTechnique == TechniqueSymbolTable:
		d.NewSearcher = e.symbolSearcher
	}
	cands, execStats, err := d.IdentifyRelatedTuplesContext(ctx, queries, focal, discovery.Options{
		Shared:          opts.SharedExecution,
		FocalAdjustment: opts.FocalAdjustment,
		AdjustmentHops:  opts.AdjustmentHops,
		Spreading:       opts.Spreading,
		K:               k,
		RequireStable:   opts.RequireStableACG,
		SpamFraction:    opts.SpamFraction,
		MaxScannedRows:  opts.Budget.MaxSearchedRows,
		MaxCandidates:   opts.Budget.MaxCandidates,
		MaxWorkers:      resolveWorkers(opts.Parallelism),
		Retry:           opts.Retry,
		Plan:            opts.Plan,
		TopK:            opts.TopK,
	})
	disc = &Discovery{
		Queries:    queries,
		Candidates: cands,
		Focal:      focal,
		GenStats:   genStats,
		ExecStats:  execStats,
	}
	if err != nil {
		if errors.Is(err, ErrCancelled) || errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrSpamAnnotation) {
			// Partial (or quarantined) results travel with the typed
			// error so operators can inspect what the run produced.
			return disc, err
		}
		return nil, err
	}
	if useCache && len(disc.Degraded()) == 0 {
		// Only clean runs are cached: a degraded result is an artifact of
		// this run's governance, not the annotation's answer. The stored
		// copy owns its candidate slice so later callers mutating the
		// returned Discovery cannot corrupt the cache, and it never carries
		// a trace — spans describe one request, not the cached answer.
		stored := *disc
		stored.Candidates = append([]Candidate(nil), disc.Candidates...)
		stored.Trace = nil
		e.discCache.Put(cacheKey, epoch, &stored, discoveryCost(cacheKey, &stored))
	}
	return disc, nil
}

// symbolSearcher returns the symbol-table technique for the given search
// database, caching the full-database index across calls. The cache is
// guarded by symMu (not e.mu) because concurrent read-locked discoveries
// race to build it; after the first build they share the immutable index.
func (e *Engine) symbolSearcher(db *relational.Database) keyword.Searcher {
	if db == e.db {
		// Disk mode: the tiered engine serves the full-database index from
		// mmap'd segments plus its tail; answers are byte-identical to the
		// heap engine's (postings are verified against live rows).
		if e.tiered != nil {
			return e.tiered
		}
		e.symMu.Lock()
		defer e.symMu.Unlock()
		if e.symbolEngine == nil {
			e.symbolEngine = keyword.NewSymbolTableEngine(db)
		}
		return e.symbolEngine
	}
	// A spreading miniDB: the pre-processing pass runs over the (small)
	// materialized view.
	return keyword.NewSymbolTableEngine(db)
}

// RefreshSearchIndex rebuilds the symbol-table technique's pre-built index
// after data changes. A no-op for the metadata technique, which reads live
// indexes. It takes the engine lock exclusively: a rebuild must not run
// under the feet of read-locked discoveries sharing the index.
func (e *Engine) RefreshSearchIndex() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.symMu.Lock()
	defer e.symMu.Unlock()
	if e.symbolEngine != nil {
		e.symbolEngine.Rebuild()
	}
	if e.tiered != nil {
		// Disk mode refreshes incrementally: only rows the mutation hook
		// marked dirty are re-indexed into the tail — the immutable
		// segments stay mapped as-is (stale postings are filtered by
		// per-row verification, so they cannot surface).
		e.tiered.Absorb()
	}
	// A rebuilt index can answer differently than the stale one whose
	// results may be cached; move every shard's epoch so those entries die
	// whichever shard they are stamped with.
	e.bumpMutEpochAll()
}

// NaiveDiscover runs the §4 baseline for a stored annotation: the whole
// body as one keyword query, no preprocessing, full-database search.
func (e *Engine) NaiveDiscover(id AnnotationID) (*Discovery, error) {
	return e.NaiveDiscoverContext(context.Background(), id)
}

// NaiveDiscoverContext is NaiveDiscover under governance: the baseline's
// full-database scan polls ctx per tuple batch and honors the engine's
// Options.Budget scan/candidate/deadline bounds. The baseline has no Stage 1,
// so MaxQueries does not apply.
func (e *Engine) NaiveDiscoverContext(ctx context.Context, id AnnotationID) (disc *Discovery, err error) {
	return e.NaiveDiscoverRequest(ctx, id, RequestOptions{})
}

// NaiveDiscoverRequest is NaiveDiscoverContext with per-request governance;
// like DiscoverRequest it runs under the engine's read lock, so concurrent
// baseline scans proceed in parallel.
func (e *Engine) NaiveDiscoverRequest(ctx context.Context, id AnnotationID, req RequestOptions) (disc *Discovery, err error) {
	defer recoverPanic(&err)
	if err := req.Validate(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	opts := req.apply(e.opts)
	a, ok := e.store.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownAnnotation, id)
	}
	if opts.Trace {
		root := trace.New("naive_discover")
		ctx = trace.WithSpan(ctx, root)
		defer func() {
			root.End()
			if disc != nil {
				disc.Trace = root.Snapshot()
			}
		}()
	}
	if opts.Budget.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget.Deadline)
		defer cancel()
	}
	focal := e.store.Focal(id)
	d := discovery.New(e.db, e.meta, e.graph)
	cands, stats, err := d.NaiveIdentifyContext(ctx, a.Body, focal, discovery.Options{
		MaxScannedRows: opts.Budget.MaxSearchedRows,
		MaxCandidates:  opts.Budget.MaxCandidates,
	})
	disc = &Discovery{Candidates: cands, Focal: focal, ExecStats: stats}
	if err != nil {
		return disc, err
	}
	return disc, nil
}

// Process runs the full pipeline for a stored annotation: discovery
// followed by verification routing (Stage 3). Auto-accepted predictions are
// attached immediately (with ACG and profile updates); mid-confidence ones
// become pending tasks.
func (e *Engine) Process(id AnnotationID) (*Discovery, VerificationOutcome, error) {
	return e.ProcessContext(context.Background(), id)
}

// ProcessContext is Process under governance. Discovery errors — typed
// cancellation/deadline errors, spam quarantine — abort before Stage 3:
// nothing is submitted to verification, and the partial Discovery travels
// with the error. A degraded-but-complete run (count budgets bit, spreading
// fell back, transient faults were retried) does reach Stage 3, but through
// the degraded path: its would-be auto-accepts become pending
// expert-verification tasks, because confidences computed over a truncated
// evidence base cannot be trusted to clear β_upper unattended.
func (e *Engine) ProcessContext(ctx context.Context, id AnnotationID) (disc *Discovery, outcome VerificationOutcome, err error) {
	return e.ProcessRequest(ctx, id, RequestOptions{})
}

// ProcessRequest is ProcessContext with per-request governance. Stage 3
// mutates engine state (attachments, ACG, hop profile, VIDs), so unlike
// DiscoverRequest it holds the engine lock exclusively for the whole run.
func (e *Engine) ProcessRequest(ctx context.Context, id AnnotationID, req RequestOptions) (disc *Discovery, outcome VerificationOutcome, err error) {
	defer recoverPanic(&err)
	if err := req.Validate(); err != nil {
		return nil, VerificationOutcome{}, err
	}
	var wb *walBinding
	disc, outcome, err = func() (*Discovery, VerificationOutcome, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		wb = e.wal
		return e.process(ctx, id, req.apply(e.opts))
	}()
	err = wb.commit(err)
	return disc, outcome, err
}

func (e *Engine) process(ctx context.Context, id AnnotationID, opts Options) (disc *Discovery, outcome VerificationOutcome, err error) {
	var root *trace.Span
	if opts.Trace && trace.FromContext(ctx) == nil {
		// process owns the root span; the discover call below becomes its
		// first child, verification routing the second.
		root = trace.New("process")
		ctx = trace.WithSpan(ctx, root)
		defer func() {
			root.End()
			if disc != nil {
				disc.Trace = root.Snapshot()
			}
		}()
	}
	disc, err = e.discoverByID(ctx, id, opts)
	if err != nil {
		return disc, VerificationOutcome{}, err
	}
	submit := e.manager.Submit
	degraded := len(disc.Degraded()) > 0
	if degraded {
		submit = e.manager.SubmitDegraded
	}
	// Stage 3 routing is logged as its computed inputs — the candidate
	// set, focal, degradation flag, and the VID the first task will get —
	// never the discovery computation itself: replay must not re-run
	// budgeted searches whose outcome depends on wall clocks.
	if err := e.walAppend(recSubmit(id, disc, degraded, e.manager.NextVID())); err != nil {
		return disc, VerificationOutcome{}, err
	}
	// Submit mutates attachments, the ACG, and the hop profile even on
	// partial failure, so the epoch moves regardless of the outcome.
	e.bumpMutEpochFor(id)
	vspan := root.StartChild("verify")
	outcome, err = submit(id, disc.Focal, disc.Candidates)
	if vspan.Enabled() {
		vspan.AddInt("accepted", len(outcome.Accepted))
		vspan.AddInt("pending", len(outcome.Pending))
		vspan.AddInt("rejected", len(outcome.Rejected))
		vspan.End()
	}
	if err != nil {
		return disc, VerificationOutcome{}, err
	}
	return disc, outcome, nil
}

// PendingTasks returns the pending verification tasks, ordered by VID.
func (e *Engine) PendingTasks() []*VerificationTask {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.manager.PendingTasks()
}

// PendingTasksByPriority returns the pending tasks ordered by descending
// confidence — the order an expert with limited time should work in.
func (e *Engine) PendingTasksByPriority() []*VerificationTask {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.manager.PendingTasksByPriority()
}

// VerifyAttachment implements the extended SQL command
// `Verify Attachement <vid>`: the expert accepts a pending task.
func (e *Engine) VerifyAttachment(vid int64) error {
	var wb *walBinding
	err := func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		wb = e.wal
		// Unknown VIDs are rejected before logging: a no-op needs no
		// record. The verdict record carries the annotation and tuple so
		// replay can re-apply the acceptance even when the task's
		// submission predates the last checkpoint.
		task, err := e.findPending(vid)
		if err != nil {
			return err
		}
		if err := e.walAppend(recVerdict(task, true)); err != nil {
			return err
		}
		return e.verifyAttachment(vid)
	}()
	return wb.commit(err)
}

func (e *Engine) verifyAttachment(vid int64) error {
	task, err := e.findPending(vid)
	if err != nil {
		return err
	}
	if err := e.manager.Verify(vid, e.store.Focal(task.Annotation)); err != nil {
		return err
	}
	e.bumpMutEpochFor(task.Annotation)
	return nil
}

// RejectAttachment implements `Reject Attachement <vid>`.
func (e *Engine) RejectAttachment(vid int64) error {
	var wb *walBinding
	err := func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		wb = e.wal
		task, err := e.findPending(vid)
		if err != nil {
			return err
		}
		if err := e.walAppend(recVerdict(task, false)); err != nil {
			return err
		}
		return e.rejectAttachment(vid)
	}()
	return wb.commit(err)
}

func (e *Engine) rejectAttachment(vid int64) error {
	task, err := e.findPending(vid)
	if err != nil {
		return err
	}
	if err := e.manager.Reject(vid); err != nil {
		return err
	}
	e.bumpMutEpochFor(task.Annotation)
	return nil
}

func (e *Engine) findPending(vid int64) (*VerificationTask, error) {
	if t, ok := e.manager.Pending(vid); ok {
		return t, nil
	}
	return nil, fmt.Errorf("nebula: no pending task v%d", vid)
}

// ResolveWithOracle resolves an annotation's pending tasks using an oracle
// (the experiments' simulated expert). Each decision is logged as its own
// verdict record — the oracle's answers, not the oracle, are what replay
// re-applies.
func (e *Engine) ResolveWithOracle(id AnnotationID, oracle Oracle) (accepted, rejected []*VerificationTask, err error) {
	var wb *walBinding
	accepted, rejected, err = func() (acc, rej []*VerificationTask, err error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		wb = e.wal
		defer func() {
			if len(acc) > 0 || len(rej) > 0 {
				e.bumpMutEpochFor(id)
			}
		}()
		focal := e.store.Focal(id)
		for _, t := range e.manager.PendingTasks() {
			if t.Annotation != id {
				continue
			}
			related := oracle.IsRelated(id, t.Tuple)
			if err := e.walAppend(recVerdict(t, related)); err != nil {
				return acc, rej, err
			}
			if related {
				if err := e.manager.Verify(t.VID, focal); err != nil {
					return acc, rej, err
				}
				acc = append(acc, t)
			} else {
				if err := e.manager.Reject(t.VID); err != nil {
					return acc, rej, err
				}
				rej = append(rej, t)
			}
		}
		return acc, rej, nil
	}()
	err = wb.commit(err)
	return accepted, rejected, err
}

// Quality computes the §3 database quality metrics against an ideal edge
// set.
func (e *Engine) Quality(ideal IdealEdges) QualityMetrics {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.Quality(ideal)
}

// PropagateQuery runs a structured query and propagates annotations over
// its results — the passive facility inherited from the underlying engine.
func (e *Engine) PropagateQuery(q StructuredQuery, projected []string) ([]PropagatedRow, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.PropagateQuery(e.db, q, projected)
}

// PropagateJoin executes an FK–PK join of the two selections and
// propagates annotations from both contributing tuples over the joined
// rows (the join semantics of query-time propagation).
func (e *Engine) PropagateJoin(left, right StructuredQuery, projectedLeft, projectedRight []string) ([]PropagatedJoinRow, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.PropagateJoin(e.db, left, right, projectedLeft, projectedRight)
}

// TuneBounds runs the Figure 9 BoundsSetting algorithm against this
// engine's discovery pipeline and installs the chosen thresholds.
func (e *Engine) TuneBounds(training []TrainingExample, cfg BoundsConfig) (Bounds, []BoundsEvaluation, error) {
	var wb *walBinding
	b, evals, err := func() (Bounds, []BoundsEvaluation, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		wb = e.wal
		discover := func(a *Annotation, focal []TupleID) ([]Candidate, error) {
			d, err := e.discover(context.Background(), a, focal, e.opts)
			if err != nil {
				return nil, err
			}
			return d.Candidates, nil
		}
		bounds, evals, err := verification.BoundsSetting(training, discover, cfg)
		if err != nil {
			return Bounds{}, nil, err
		}
		// Only the chosen thresholds are logged — replay must not re-run
		// the training sweep.
		if err := e.walAppend(recBounds(Bounds(bounds))); err != nil {
			return Bounds{}, nil, err
		}
		if err := e.setBounds(Bounds(bounds)); err != nil {
			return Bounds{}, nil, err
		}
		// New thresholds re-route every annotation's Stage 3, so cached
		// discoveries on every shard are conservatively invalidated.
		e.bumpMutEpochAll()
		return Bounds(bounds), evals, nil
	}()
	err = wb.commit(err)
	return b, evals, err
}
