package nebula_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nebula"
	"nebula/internal/wal"
	"nebula/internal/workload"
)

// shardCounts is the partition ladder every determinism leg climbs. 1 is
// the unsharded control; the rest must be byte-identical to it.
var shardCounts = []int{1, 2, 4, 8}

// shardDetEngine builds a fresh engine over a freshly generated
// (deterministic) dataset, hash-partitioned across n shards. Each shard
// count gets its own dataset copy because the scripts mutate engine state;
// generation is seeded, so the starting states are identical.
func shardDetEngine(t *testing.T, n int, ingest bool) (*nebula.Engine, []*workload.AnnotationSpec) {
	t.Helper()
	ds, err := workload.Generate(workload.TinyConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.8}
	opts.Shards = n
	if ingest {
		opts.Ingest = nebula.IngestConfig{Enabled: true, QueueCap: 4 * (ds.Store.Len() + len(ds.Workload) + 1)}
	}
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Workload) < 8 {
		t.Fatalf("fixture too small: %d workload annotations", len(ds.Workload))
	}
	return e, ds.Workload
}

// renderEngineState folds the mutable annotation-side state into one
// canonical string: every attachment (with type and confidence) and the
// pending verification queue. No stats, no timings — only results, so it is
// comparable across shard counts where cache hit/miss patterns may differ.
func renderEngineState(e *nebula.Engine) string {
	var b strings.Builder
	for _, id := range e.Store().IDs() {
		fmt.Fprintf(&b, "%s:", id)
		for _, att := range e.Store().Attachments(id, -1) {
			fmt.Fprintf(&b, " %s/%s.%s:%d=%.9f", att.Tuple.Table, att.Tuple.Key, att.Column, att.Type, att.Confidence)
		}
		b.WriteByte('\n')
	}
	b.WriteString("tasks:\n")
	for _, task := range e.PendingTasks() {
		fmt.Fprintf(&b, " %s %s/%s %.9f [%s]\n",
			task.Annotation, task.Tuple.Table, task.Tuple.Key, task.Confidence, strings.Join(task.Evidence, ","))
	}
	return b.String()
}

// shardDetRequests is the request-option matrix the discovery legs sweep:
// caching on and off, worker parallelism, and the cost-based planner with
// top-k early termination — every per-request surface whose caches and
// scheduling could in principle observe the shard count.
func shardDetRequests() []nebula.RequestOptions {
	return []nebula.RequestOptions{
		{Cache: "on", Parallelism: 1},
		{Cache: "off", Parallelism: 1},
		{Cache: "on", Parallelism: 4},
		{Cache: "on", Plan: "on", TopK: 3},
		{Cache: "off", Plan: "on", TopK: 3},
	}
}

// TestShardCountDeterminismDiscovery runs the full request-option matrix
// over every workload annotation at 1/2/4/8 shards, interleaving writes
// (which bump one shard's mutation epoch) with cached re-discoveries (which
// must observe them). Output must be byte-identical to the 1-shard control
// at every step; a stale cache hit or a lost invalidation diverges here.
func TestShardCountDeterminismDiscovery(t *testing.T) {
	ctx := context.Background()
	var base string
	for _, n := range shardCounts {
		e, specs := shardDetEngine(t, n, false)
		specs = specs[:8]
		ids := make([]nebula.AnnotationID, len(specs))
		for i, s := range specs {
			ids[i] = s.Ann.ID
			if err := e.AddAnnotation(s.Ann, s.Focal(1)); err != nil {
				t.Fatal(err)
			}
		}
		var b strings.Builder
		for ri, req := range shardDetRequests() {
			results := e.DiscoverBatchRequest(ctx, ids, req)
			fmt.Fprintf(&b, "== req %d\n", ri)
			b.WriteString(renderBatchResults(results))
			// A write homed on exactly one shard: at n > 1 it must
			// invalidate precisely the cached discoveries that could see it,
			// and the re-run below must not serve anything stale.
			w := &nebula.Annotation{
				ID:     nebula.AnnotationID(fmt.Sprintf("shard-det-w%d", ri)),
				Author: "det",
				Body:   fmt.Sprintf("shard determinism writer %d", ri),
				Kind:   "det",
			}
			if err := e.AddAnnotation(w, specs[ri%len(specs)].Focal(1)); err != nil {
				t.Fatal(err)
			}
			results = e.DiscoverBatchRequest(ctx, ids, req)
			fmt.Fprintf(&b, "== req %d after write\n", ri)
			b.WriteString(renderBatchResults(results))
		}
		got := b.String()
		if n == 1 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("shards=%d: discovery output diverged from single-shard control\n--- shards=1\n%s--- shards=%d\n%s",
				n, base, n, got)
		}
	}
}

// TestShardCountDeterminismProcess checks the full mutating pipeline:
// ProcessBatch (Stage-3 VID assignment, ACG updates, verification routing)
// followed by the pending-queue and attachment state, identical at every
// shard count.
func TestShardCountDeterminismProcess(t *testing.T) {
	var base string
	for _, n := range shardCounts {
		e, specs := shardDetEngine(t, n, false)
		specs = specs[:8]
		ids := make([]nebula.AnnotationID, len(specs))
		for i, s := range specs {
			ids[i] = s.Ann.ID
			if err := e.AddAnnotation(s.Ann, s.Focal(1)); err != nil {
				t.Fatal(err)
			}
		}
		results := e.ProcessBatch(ids)
		got := renderBatchResults(results) + renderEngineState(e)
		if n == 1 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("shards=%d: ProcessBatch output diverged from single-shard control", n)
		}
	}
}

// TestShardCountDeterminismIngest scripts the streaming path — async adds,
// queued discoveries, drains, relational mutations with CDC re-discovery,
// and a convergence flush — and checks the drained state is identical at
// every shard count. This is the leg where single-shard admission
// (AddAnnotationAsync, EnqueueDiscovery) interleaves with whole-group
// drains.
func TestShardCountDeterminismIngest(t *testing.T) {
	ctx := context.Background()
	var base string
	for _, n := range shardCounts {
		e, specs := shardDetEngine(t, n, true)
		for i, s := range specs {
			if i%2 == 0 {
				if err := e.AddAnnotation(s.Ann, s.Focal(1)); err != nil {
					t.Fatal(err)
				}
				if _, err := e.EnqueueDiscovery(s.Ann.ID, 0); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := e.AddAnnotationAsync(s.Ann, s.Focal(1), 0); err != nil {
					t.Fatal(err)
				}
			}
			if (i+1)%3 == 0 {
				if _, err := e.DrainIngest(ctx, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := e.FlushIngest(ctx); err != nil {
			t.Fatal(err)
		}
		got := renderEngineState(e)
		if n == 1 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("shards=%d: ingest-drained state diverged from single-shard control\n--- shards=1\n%s--- shards=%d\n%s",
				n, base, n, got)
		}
	}
}

// TestShardWALReplayShardCountInvariant checks durability across shard
// counts: shard homes are recomputed from the annotation ID, never
// persisted, so a WAL written by a 4-shard engine must recover to the same
// state on a 1-shard and an 8-shard engine.
func TestShardWALReplayShardCountInvariant(t *testing.T) {
	const seed = 29
	ds, err := workload.Generate(workload.TinyConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.8}
	opts.Shards = 4
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	var baseline bytes.Buffer
	if err := e.SaveSnapshot(&baseline); err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(l)
	specs := ds.Workload[:6]
	ids := make([]nebula.AnnotationID, len(specs))
	for i, s := range specs {
		ids[i] = s.Ann.ID
		if err := e.AddAnnotation(s.Ann, s.Focal(1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range e.ProcessBatch(ids) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	want := renderEngineState(e)

	configure := func(db *nebula.Database) (*nebula.MetaRepository, error) {
		return workload.BuildMeta(db, rand.New(rand.NewSource(seed)))
	}
	for _, n := range []int{1, 8} {
		ropts := nebula.DefaultOptions()
		ropts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.8}
		ropts.Shards = n
		re, err := nebula.RestoreEngine(bytes.NewReader(baseline.Bytes()), configure, ropts)
		if err != nil {
			t.Fatalf("shards=%d: restore: %v", n, err)
		}
		if _, err := re.ReplayWAL(walDir, nil); err != nil {
			t.Fatalf("shards=%d: replay: %v", n, err)
		}
		if got := renderEngineState(re); got != want {
			t.Errorf("shards=%d: recovered state diverged from the 4-shard writer\n--- writer\n%s--- recovered\n%s",
				n, want, got)
		}
	}
}

// TestShardStatsPartition checks the observability surface: ShardStats must
// account for every annotation exactly once, on the shard the hash says is
// home, with per-shard mutation epochs summing over the work done.
func TestShardStatsPartition(t *testing.T) {
	e, specs := shardDetEngine(t, 4, false)
	for _, s := range specs[:8] {
		if err := e.AddAnnotation(s.Ann, s.Focal(1)); err != nil {
			t.Fatal(err)
		}
	}
	ss := e.ShardStats()
	if ss.Shards != 4 || len(ss.PerShard) != 4 {
		t.Fatalf("ShardStats shape: %+v", ss)
	}
	total, muts := 0, uint64(0)
	for i, s := range ss.PerShard {
		if s.Shard != i {
			t.Errorf("shard %d reported index %d", i, s.Shard)
		}
		total += s.Annotations
		muts += s.Mutations
	}
	if want := len(e.Store().IDs()); total != want {
		t.Errorf("per-shard annotation counts sum to %d, store holds %d", total, want)
	}
	if muts < 8 {
		t.Errorf("mutation epochs sum to %d after 8 writes", muts)
	}
}
