package nebula

import (
	"nebula/internal/vfs"
	"nebula/internal/wal"
)

// AttachWALFS exposes the filesystem-seam variant of AttachWAL so the
// external crash-fault tests can route checkpoint writes through an
// injected filesystem.
func (e *Engine) AttachWALFS(l *wal.Log, fsys vfs.FS) { e.attachWAL(l, fsys) }

// SetWALLogf swaps the non-fatal WAL housekeeping logger and returns a
// restore func, so tests can assert that prune failures are surfaced.
func SetWALLogf(f func(format string, args ...any)) (restore func()) {
	prev := walLogf
	walLogf = f
	return func() { walLogf = prev }
}
