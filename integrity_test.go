package nebula_test

import (
	"strings"
	"testing"

	"nebula"
	"nebula/internal/workload"
)

func TestCheckIntegrityHealthyEngine(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.8}
	e, ds := engineFixture(t, opts)
	// Exercise the full lifecycle: process, resolve, delete.
	for _, spec := range ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6}) {
		if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.Process(spec.Ann.ID); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.ResolveWithOracle(spec.Ann.ID, nebula.IdealOracle(ds.Ideal)); err != nil {
			t.Fatal(err)
		}
	}
	report := e.CheckIntegrity()
	if !report.OK() {
		t.Fatalf("healthy engine reported problems: %v", report.Problems)
	}
	if report.Attachments == 0 || report.GraphNodes == 0 {
		t.Errorf("report counted nothing: %+v", report)
	}
	// Deletion preserves integrity.
	gt := e.DB().MustTable("Gene")
	victim := gt.Rows()[0].ID
	if _, _, err := e.DeleteTuple(victim); err != nil {
		t.Fatal(err)
	}
	if report := e.CheckIntegrity(); !report.OK() {
		t.Fatalf("post-delete problems: %v", report.Problems)
	}
}

func TestCheckIntegrityDetectsRawMutations(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 1, Max: 3})[0]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	// Bypass the engine: delete the focal tuple straight from the table.
	focal := spec.Focal(1)[0]
	tbl := e.DB().MustTable(focal.Table)
	if !tbl.DeleteByKey(focal.Key) {
		t.Fatal("raw delete failed")
	}
	report := e.CheckIntegrity()
	if report.OK() {
		t.Fatal("dangling attachment not detected")
	}
	found := false
	for _, p := range report.Problems {
		if strings.Contains(p, "tuple not in database") || strings.Contains(p, "not in database") {
			found = true
		}
	}
	if !found {
		t.Errorf("problems = %v", report.Problems)
	}
}

func TestCheckIntegrityFlagsOutOfBandPendingTasks(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0, Upper: 1} // everything pending
	e, ds := engineFixture(t, opts)
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[0]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Process(spec.Ann.ID); err != nil {
		t.Fatal(err)
	}
	if len(e.PendingTasks()) == 0 {
		t.Fatal("no pending tasks")
	}
	// Retune the bounds so the queued tasks fall outside the new band.
	if err := e.SetBounds(nebula.Bounds{Lower: 0.99, Upper: 1.0}); err != nil {
		t.Fatal(err)
	}
	report := e.CheckIntegrity()
	if report.OK() {
		t.Fatal("out-of-band pending tasks not flagged")
	}
}
