package nebula

import (
	"fmt"
	"io"

	"nebula/internal/snapshot"
)

// SaveSnapshot persists the engine's runtime state — data, annotations,
// attachments, ACG, hop profile — as a versioned gob stream. The NebulaMeta
// repository is configuration, not state, and is NOT captured: re-register
// concepts/patterns/ontologies when restoring (see RestoreEngine).
func (e *Engine) SaveSnapshot(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap, err := snapshot.Capture(snapshot.State{
		DB:      e.db,
		Store:   e.store,
		Graph:   e.graph,
		Profile: e.profile,
	})
	if err != nil {
		return err
	}
	return snapshot.Save(w, snap)
}

// SaveSnapshotFile persists the engine's state to path durably and
// atomically: the checksummed stream is written to a temp file in the same
// directory, fsynced, and renamed over path, so a crash mid-save never
// leaves a half-written state file where the previous snapshot was.
func (e *Engine) SaveSnapshotFile(path string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap, err := snapshot.Capture(snapshot.State{
		DB:      e.db,
		Store:   e.store,
		Graph:   e.graph,
		Profile: e.profile,
	})
	if err != nil {
		return err
	}
	return snapshot.SaveFile(path, snap)
}

// ErrSnapshotCorrupt reports a snapshot stream that failed integrity
// verification (truncated or bit-flipped). Match with errors.Is.
var ErrSnapshotCorrupt = snapshot.ErrCorrupt

// RestoreEngine rebuilds an engine from a snapshot stream. configureMeta
// receives the restored database and must return the NebulaMeta repository
// for it (typically the same registration code the application ran when it
// first created the engine).
func RestoreEngine(r io.Reader, configureMeta func(*Database) (*MetaRepository, error), opts Options) (*Engine, error) {
	snap, err := snapshot.Load(r)
	if err != nil {
		return nil, err
	}
	st, err := snap.Restore()
	if err != nil {
		return nil, err
	}
	repo, err := configureMeta(st.DB)
	if err != nil {
		return nil, fmt.Errorf("nebula: configure meta: %w", err)
	}
	e, err := NewWithState(st.DB, repo, st.Store, st.Graph, opts)
	if err != nil {
		return nil, err
	}
	// NewWithState created a fresh profile; adopt the restored counters.
	buckets, unreachable := st.Profile.Counts()
	e.profile.RestoreCounts(buckets, unreachable)
	return e, nil
}
