package nebula

import (
	"fmt"
	"io"
	"sort"
	"time"

	"nebula/internal/ingest"
	"nebula/internal/segment"
	"nebula/internal/snapshot"
	"nebula/internal/verification"
)

// SaveSnapshot persists the engine's runtime state — data, annotations,
// attachments, ACG, hop profile — as a versioned gob stream. The NebulaMeta
// repository is configuration, not state, and is NOT captured: re-register
// concepts/patterns/ontologies when restoring (see RestoreEngine).
//
// The engine's read lock is held only while capturing the state into
// serializable form; encoding and writing happen after it is released, so
// a slow writer never blocks mutations for the duration of the I/O.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	snap, payload, storeSeq, err := e.captureSnapshot()
	if err != nil {
		return err
	}
	if err := snapshot.Save(w, snap); err != nil {
		return err
	}
	e.completeStoreFlush(storeSeq, 0, payload)
	return nil
}

// captureSnapshot deep-copies the engine state into a Snapshot under the
// read lock. The returned value shares nothing mutable with the engine
// (Capture dumps rows and edges into plain structs), so callers serialize
// it lock-free. In disk mode the index tail is snapshotted under the same
// lock and the flush generation stamped into the snapshot; the caller
// passes both to completeStoreFlush once the snapshot is durable.
func (e *Engine) captureSnapshot() (*snapshot.Snapshot, map[string][]segment.Posting, uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap, err := snapshot.Capture(e.snapshotState())
	if err != nil {
		return nil, nil, 0, err
	}
	payload, storeSeq := e.prepareStoreFlush()
	snap.StoreSeq = storeSeq
	return snap, payload, storeSeq, nil
}

// snapshotState assembles the capture input. Caller holds e.mu (either
// mode). Bounds and the pending verification queue ride along because
// they are durable state: a checkpoint prunes the WAL records that
// established them, so the snapshot must carry them or recovery would
// route post-checkpoint submissions with stale thresholds and silently
// lose every task still awaiting an expert.
func (e *Engine) snapshotState() snapshot.State {
	b := e.manager.Bounds()
	var tasks []snapshot.TaskDump
	for _, t := range e.manager.PendingTasks() { // ordered by VID
		tasks = append(tasks, snapshot.TaskDump{
			VID:        t.VID,
			Annotation: string(t.Annotation),
			Table:      t.Tuple.Table,
			Key:        t.Tuple.Key,
			Confidence: t.Confidence,
			Evidence:   append([]string(nil), t.Evidence...),
		})
	}
	st := snapshot.State{
		DB:          e.db,
		Store:       e.store,
		Graph:       e.graph,
		Profile:     e.profile,
		HasBounds:   true,
		BoundsLower: b.Lower,
		BoundsUpper: b.Upper,
		Tasks:       tasks,
		NextVID:     e.manager.NextVID(),
	}
	if e.ingest != nil {
		for _, j := range e.ingest.queue.Jobs() { // drain order
			st.IngestJobs = append(st.IngestJobs, snapshot.IngestJobDump{
				Annotation: string(j.Annotation),
				Kind:       uint8(j.Kind),
				Priority:   j.Priority,
				Seq:        j.Seq,
			})
		}
		st.IngestNextSeq = e.ingest.queue.NextSeq()
	}
	manualIDs := make([]string, 0, len(e.manualFocal))
	for id := range e.manualFocal {
		manualIDs = append(manualIDs, string(id))
	}
	sort.Strings(manualIDs)
	for _, id := range manualIDs {
		d := snapshot.ManualFocalDump{Annotation: id}
		for _, t := range e.manualFocal[AnnotationID(id)] {
			d.Tuples = append(d.Tuples, snapshot.TupleDump{Table: t.Table, Key: t.Key})
		}
		st.ManualFocal = append(st.ManualFocal, d)
	}
	return st
}

// SaveSnapshotFile persists the engine's state to path durably and
// atomically: the checksummed stream is written to a temp file in the same
// directory, fsynced, and renamed over path, so a crash mid-save never
// leaves a half-written state file where the previous snapshot was. Like
// SaveSnapshot, the engine lock is held only for the in-memory capture —
// the disk work runs after release.
//
// With a WAL attached this is a full checkpoint: the log is rotated so the
// snapshot's coverage boundary is recorded, and the covered segments are
// pruned once the snapshot is durable (see Checkpoint).
func (e *Engine) SaveSnapshotFile(path string) error {
	if e.wal != nil {
		return e.Checkpoint(path)
	}
	snap, payload, storeSeq, err := e.captureSnapshot()
	if err != nil {
		return err
	}
	if err := snapshot.SaveFile(path, snap); err != nil {
		return err
	}
	e.completeStoreFlush(storeSeq, 0, payload)
	return nil
}

// ErrSnapshotCorrupt reports a snapshot stream that failed integrity
// verification (truncated or bit-flipped). Match with errors.Is.
var ErrSnapshotCorrupt = snapshot.ErrCorrupt

// RestoreEngine rebuilds an engine from a snapshot stream. configureMeta
// receives the restored database and must return the NebulaMeta repository
// for it (typically the same registration code the application ran when it
// first created the engine).
//
// If the snapshot was written by a checkpoint, the engine remembers the
// recorded WAL coverage boundary: a subsequent ReplayWAL/RecoverWAL skips
// the segments the snapshot already folds in, so a crash between
// checkpointing and pruning never double-applies history.
func RestoreEngine(r io.Reader, configureMeta func(*Database) (*MetaRepository, error), opts Options) (*Engine, error) {
	snap, err := snapshot.Load(r)
	if err != nil {
		return nil, err
	}
	st, err := snap.Restore()
	if err != nil {
		return nil, err
	}
	repo, err := configureMeta(st.DB)
	if err != nil {
		return nil, fmt.Errorf("nebula: configure meta: %w", err)
	}
	// The snapshot's StoreSeq is the segment generation the disk-backed
	// index must carry to be adopted without a rebuild (see store.go).
	e, err := newWithState(st.DB, repo, st.Store, st.Graph, opts, snap.StoreSeq)
	if err != nil {
		return nil, err
	}
	// NewWithState created a fresh profile; adopt the restored counters.
	buckets, unreachable := st.Profile.Counts()
	e.profile.RestoreCounts(buckets, unreachable)
	e.walBaseSegment = snap.WALSegment
	if snap.HasBounds {
		// The snapshot's thresholds override opts.Bounds: they reflect
		// every SetBounds/TuneBounds folded into the captured state.
		if err := e.setBounds(Bounds{Lower: snap.BoundsLower, Upper: snap.BoundsUpper}); err != nil {
			return nil, fmt.Errorf("nebula: restore bounds: %w", err)
		}
	}
	if len(snap.Tasks) > 0 || snap.NextVID > 0 {
		tasks := make([]*verification.Task, len(snap.Tasks))
		for i, d := range snap.Tasks {
			tasks[i] = &verification.Task{
				VID:        d.VID,
				Annotation: AnnotationID(d.Annotation),
				Tuple:      TupleID{Table: d.Table, Key: d.Key},
				Confidence: d.Confidence,
				Evidence:   append([]string(nil), d.Evidence...),
				Decision:   verification.Pending,
			}
		}
		e.manager.RestoreTasks(tasks, snap.NextVID)
	}
	// Adopt the snapshotted manual-focal map when present; NewWithState's
	// fallback (every current focal tuple counts as manual) covers older
	// snapshots that predate the field.
	if len(st.ManualFocal) > 0 {
		e.manualFocal = make(map[AnnotationID][]TupleID, len(st.ManualFocal))
		for _, d := range st.ManualFocal {
			tuples := make([]TupleID, len(d.Tuples))
			for i, t := range d.Tuples {
				tuples[i] = TupleID{Table: t.Table, Key: t.Key}
			}
			e.manualFocal[AnnotationID(d.Annotation)] = tuples
		}
	}
	// Re-admit the snapshotted ingest queue (only meaningful when the
	// restoring engine enables ingest). Force preserves the recorded
	// sequence numbers so drain order survives the round trip; freshness
	// clocks restart now.
	if e.ingest != nil && (len(st.IngestJobs) > 0 || st.IngestNextSeq > 0) {
		now := time.Now()
		for _, d := range st.IngestJobs {
			e.ingest.queue.Force(ingest.Job{
				Annotation: AnnotationID(d.Annotation),
				Kind:       ingest.Kind(d.Kind),
				Priority:   d.Priority,
				Seq:        d.Seq,
				EnqueuedAt: now,
			})
		}
		e.ingest.queue.RestoreSeq(st.IngestNextSeq)
	}
	return e, nil
}
