package nebula_test

import (
	"fmt"
	"strings"
	"testing"

	"nebula"
	"nebula/internal/workload"
)

// commandFixture builds an engine over the tiny dataset with one workload
// annotation already inserted, bounds forcing everything into the pending
// band so the verify/reject commands have material.
func commandFixture(t *testing.T) (*nebula.Engine, *workload.AnnotationSpec) {
	t.Helper()
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0, Upper: 1}
	e, ds := engineFixture(t, opts)
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[0]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	return e, spec
}

func TestExecCommandProcessAndVerify(t *testing.T) {
	e, spec := commandFixture(t)
	res, err := e.ExecCommand(fmt.Sprintf("PROCESS '%s'", spec.Ann.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("no candidates: %+v", res)
	}
	if !strings.Contains(res.Message, "pending") {
		t.Errorf("message = %q", res.Message)
	}

	list, err := e.ExecCommand("LIST PENDING")
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Rows) == 0 {
		t.Fatal("no pending tasks listed")
	}
	vid := list.Rows[0][0] // "vN"
	if _, err := e.ExecCommand("VERIFY ATTACHMENT " + vid[1:]); err != nil {
		t.Fatal(err)
	}
	if len(list.Rows) > 1 {
		vid2 := list.Rows[1][0]
		if _, err := e.ExecCommand("REJECT ATTACHEMENT " + vid2[1:]); err != nil {
			t.Fatal(err)
		}
	}
	// The verified attachment is now a true attachment.
	after, err := e.ExecCommand("LIST PENDING")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) >= len(list.Rows) {
		t.Errorf("pending table did not shrink: %d -> %d", len(list.Rows), len(after.Rows))
	}
}

func TestExecCommandListPendingLimit(t *testing.T) {
	e, spec := commandFixture(t)
	if _, err := e.ExecCommand(fmt.Sprintf("PROCESS '%s'", spec.Ann.ID)); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecCommand("LIST PENDING LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("limit ignored: %d rows", len(res.Rows))
	}
}

func TestExecCommandAnnotateAndDiscover(t *testing.T) {
	e, _ := commandFixture(t)
	// Find a real gene PK to attach to.
	sel, err := e.ExecCommand("SELECT GID FROM Gene")
	if err != nil {
		t.Fatal(err)
	}
	pk := sel.Rows[0][0]
	other := sel.Rows[5][0]
	cmd := fmt.Sprintf("ANNOTATE Gene '%s' AS 'note1' BODY 'this gene relates to %s'", pk, other)
	if _, err := e.ExecCommand(cmd); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecCommand("DISCOVER 'note1'")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if strings.Contains(row[0], strings.ToLower(other)) {
			found = true
		}
	}
	if !found {
		t.Errorf("embedded reference %s not discovered: %+v", other, res.Rows)
	}
}

func TestExecCommandSelect(t *testing.T) {
	e, _ := commandFixture(t)
	res, err := e.ExecCommand("SELECT GID, Name FROM Gene WHERE GID = 'JW00003'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "JW00003" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Columns) != 2 {
		t.Errorf("columns = %v", res.Columns)
	}
	// Numeric literal coercion.
	res, err = e.ExecCommand("SELECT GID FROM Gene WHERE Length = 99999")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("unexpected rows: %v", res.Rows)
	}
}

func TestExecCommandSelectWithAnnotations(t *testing.T) {
	e, spec := commandFixture(t)
	// The focal tuple carries the workload annotation.
	focal := spec.Focal(1)[0]
	row, _ := e.DB().Lookup(focal)
	pk := row.MustGet(row.Schema().PrimaryKey).Str()
	res, err := e.ExecCommand(fmt.Sprintf(
		"SELECT * FROM %s WHERE %s = '%s' WITH ANNOTATIONS",
		focal.Table, row.Schema().PrimaryKey, pk))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	annCol := res.Rows[0][len(res.Rows[0])-1]
	if !strings.Contains(annCol, string(spec.Ann.ID)) {
		t.Errorf("annotation column = %q", annCol)
	}
}

func TestExecCommandErrors(t *testing.T) {
	e, _ := commandFixture(t)
	for _, bad := range []string{
		"NONSENSE",
		"VERIFY ATTACHMENT 99999",
		"REJECT ATTACHMENT 99999",
		"SELECT * FROM Missing",
		"SELECT Nope FROM Gene",
		"SELECT * FROM Gene WHERE Nope = 'x'",
		"SELECT * FROM Gene WHERE Length = 'notanint'",
		"ANNOTATE Missing 'x' AS 'a' BODY 'b'",
		"ANNOTATE Gene 'NOPE' AS 'a' BODY 'b'",
		"DISCOVER 'missing-annotation'",
		"PROCESS 'missing-annotation'",
	} {
		if _, err := e.ExecCommand(bad); err == nil {
			t.Errorf("ExecCommand(%q) should fail", bad)
		}
	}
}
