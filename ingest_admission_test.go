package nebula_test

import (
	"sync"
	"testing"

	"nebula"
	"nebula/internal/workload"
)

// These tests pin the admission contract of the async ingest paths: the
// queue position, depth, and coalescing flag returned with an accepted
// submission are computed atomically with the admission itself. The 202
// response used to re-read IngestStats after the enqueue lock was
// released, so concurrent submissions or coalesces could make it report a
// queue state the acknowledged job was never actually in.

// TestIngestAdmissionContract pins the deterministic shape: positions
// follow drain order (priority desc, sequence asc), depth counts the job
// itself, and a coalescing enqueue reports Coalesced with an unchanged
// depth and the original sequence.
func TestIngestAdmissionContract(t *testing.T) {
	e, ds := ingestFixture(t, nil)
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 1, Max: 3})

	a, err := e.AddAnnotationAsync(specs[0].Ann, specs[0].Focal(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Position != 1 || a.Depth != 1 || a.Coalesced {
		t.Fatalf("first admission: %+v, want position 1, depth 1, not coalesced", a)
	}

	// Higher priority drains before the earlier job: position 1 of 2.
	b, err := e.AddAnnotationAsync(specs[1].Ann, specs[1].Focal(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Position != 1 || b.Depth != 2 || b.Coalesced {
		t.Fatalf("high-priority admission: %+v, want position 1, depth 2", b)
	}

	// Same priority as the first job but a later sequence: drains last.
	c, err := e.AddAnnotationAsync(specs[2].Ann, specs[2].Focal(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Position != 3 || c.Depth != 3 || c.Coalesced {
		t.Fatalf("tie-broken admission: %+v, want position 3, depth 3", c)
	}

	// Coalescing upgrade: same slot, original sequence, new priority wins
	// the queue — and the admission says so, with the depth unchanged.
	up, err := e.EnqueueDiscovery(specs[0].Ann.ID, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Coalesced || up.Depth != 3 || up.Position != 1 {
		t.Fatalf("coalescing admission: %+v, want coalesced, depth 3, position 1", up)
	}
	if up.Seq != a.Seq || up.Priority != 9 {
		t.Fatalf("coalesce seq/priority: %+v, want seq %d priority 9", up, a.Seq)
	}
}

// TestIngestAdmissionAtomicUnderConcurrency is the race pin: with only
// concurrent enqueues running (no drains), every fresh admission grows the
// queue by exactly one, so the depths reported across fresh admissions
// must be distinct and every position must fit inside its own depth. A
// post-hoc stats read (the old behavior) yields duplicate or overshot
// depths under this load. Run with -race.
func TestIngestAdmissionAtomicUnderConcurrency(t *testing.T) {
	e, ds := ingestFixture(t, nil)
	var specs []*workload.AnnotationSpec
	for _, size := range workload.AnnotationSizes {
		specs = append(specs, ds.WorkloadSet(size, workload.RefClass{})...)
	}
	const workers = 8
	perWorker := len(specs) / workers
	if perWorker < 2 {
		t.Fatalf("fixture too small: %d specs", len(specs))
	}

	admissions := make([][]nebula.IngestAdmission, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				spec := specs[w*perWorker+i]
				adm, err := e.AddAnnotationAsync(spec.Ann, spec.Focal(1), w%3)
				if err != nil {
					t.Error(err)
					return
				}
				admissions[w] = append(admissions[w], adm)
				// Immediate duplicate: must coalesce and must not claim a
				// deeper queue than actually exists at its own admission.
				dup, err := e.EnqueueDiscovery(spec.Ann.ID, w%3+1)
				if err != nil {
					t.Error(err)
					return
				}
				admissions[w] = append(admissions[w], dup)
			}
		}(w)
	}
	wg.Wait()

	depths := map[int]bool{}
	fresh := 0
	for _, batch := range admissions {
		for _, adm := range batch {
			if adm.Position < 1 || adm.Position > adm.Depth {
				t.Fatalf("admission %+v: position outside [1, depth]", adm)
			}
			if adm.Coalesced {
				continue
			}
			fresh++
			if depths[adm.Depth] {
				t.Fatalf("fresh admissions share depth %d: the report was not atomic with the enqueue", adm.Depth)
			}
			depths[adm.Depth] = true
		}
	}
	if want := workers * perWorker; fresh != want {
		t.Fatalf("fresh admissions = %d, want %d", fresh, want)
	}
	// Growth-only load: the fresh depths are exactly 1..N.
	for d := 1; d <= fresh; d++ {
		if !depths[d] {
			t.Fatalf("depth %d missing from fresh admissions (set has %d entries)", d, len(depths))
		}
	}
	if got := e.IngestStats().QueueDepth; got != fresh {
		t.Fatalf("final queue depth %d, want %d", got, fresh)
	}
}
