package nebula_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"nebula"
	"nebula/internal/wal"
	"nebula/internal/workload"
)

// These tests cover the streaming proactive pipeline end to end at the
// engine layer: the async submission path and its backpressure contract,
// change-data-capture precision (exactly the K-hop-affected annotations are
// re-queued, no more), the determinism invariant (any interleaving of
// mutations and drains converges to the synchronous from-scratch state),
// and durability (queued jobs survive a crash through WAL replay and
// snapshot round trips).

// ingestFixture builds a deterministic tiny dataset and an engine with the
// streaming subsystem on.
func ingestFixture(t testing.TB, mutate func(*nebula.Options)) (*nebula.Engine, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(workload.TinyConfig(crashSeed))
	if err != nil {
		t.Fatal(err)
	}
	opts := nebula.DefaultOptions()
	opts.Ingest = nebula.IngestConfig{Enabled: true}
	if mutate != nil {
		mutate(&opts)
	}
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, ds
}

// renderIngestState is the identity rendering the determinism tests compare:
// every stored annotation's attachments (tuple, column, type, confidence) in
// store order, then every pending task (annotation, tuple, confidence,
// evidence) in creation order. VIDs are excluded — the streaming engine
// consumes them on intermediate drains the control never runs.
func renderIngestState(e *nebula.Engine) string {
	var b strings.Builder
	for _, id := range e.Store().IDs() {
		fmt.Fprintf(&b, "%s:", id)
		for _, att := range e.Store().Attachments(id, -1) {
			fmt.Fprintf(&b, " %s.%s:%d=%.9f", att.Tuple, att.Column, att.Type, att.Confidence)
		}
		b.WriteByte('\n')
	}
	b.WriteString("tasks:\n")
	for _, task := range e.PendingTasks() {
		fmt.Fprintf(&b, " %s %s %.9f %v\n", task.Annotation, task.Tuple, task.Confidence, task.Evidence)
	}
	return b.String()
}

// ingestMutation is one recorded tuple update, replayed against the control
// engine so both converge on the same database state.
type ingestMutation struct {
	target nebula.TupleID
	column string
	value  nebula.Value
}

// specMutation derives the update for one workload spec's first focal tuple.
// Each spec is mutated at most once per value of n, so the final database
// state does not depend on the order concurrent mutations landed in.
func specMutation(spec *workload.AnnotationSpec, n int) (ingestMutation, bool) {
	target := spec.Focal(1)[0]
	switch target.Table {
	case "Gene":
		return ingestMutation{target, "Length", nebula.Int(int64(700 + n))}, true
	case "Protein":
		return ingestMutation{target, "PType", nebula.String(fmt.Sprintf("mutant-%d", n))}, true
	}
	return ingestMutation{}, false
}

func applyMutation(e *nebula.Engine, mut ingestMutation) error {
	return e.MutateDB(func(db *nebula.Database) error {
		return db.MustTable(mut.target.Table).UpdateByKey(mut.target.Key, mut.column, mut.value)
	})
}

// TestIngestAsyncBackpressure exercises the bounded-queue contract: a full
// queue rejects AddAnnotationAsync with the typed error WITHOUT storing the
// annotation (no acknowledged-but-jobless orphans), and counts the drop.
func TestIngestAsyncBackpressure(t *testing.T) {
	e, ds := ingestFixture(t, func(o *nebula.Options) {
		o.Ingest.QueueCap = 2
	})
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 1, Max: 3})
	if len(specs) < 3 {
		t.Fatalf("fixture needs >= 3 specs, got %d", len(specs))
	}
	for i := 0; i < 2; i++ {
		if _, err := e.AddAnnotationAsync(specs[i].Ann, specs[i].Focal(1), 0); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := e.AddAnnotationAsync(specs[2].Ann, specs[2].Focal(1), 0)
	if !errors.Is(err, nebula.ErrIngestQueueFull) {
		t.Fatalf("expected ErrIngestQueueFull, got %v", err)
	}
	if _, ok := e.Store().Get(specs[2].Ann.ID); ok {
		t.Fatal("rejected submission must not store the annotation")
	}
	st := e.IngestStats()
	if st.QueueDepth != 2 || st.Dropped != 1 {
		t.Fatalf("depth=%d dropped=%d, want 2/1", st.QueueDepth, st.Dropped)
	}
	// A drain frees room; the retry succeeds.
	if _, err := e.DrainIngest(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddAnnotationAsync(specs[2].Ann, specs[2].Focal(1), 0); err != nil {
		t.Fatalf("retry after drain: %v", err)
	}
}

// TestIngestCoalescing asserts duplicate enqueues fold into the queued job:
// one queue slot, the higher priority, the ORIGINAL sequence (queue position
// is admission order, not last-touch order).
func TestIngestCoalescing(t *testing.T) {
	e, ds := ingestFixture(t, nil)
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 1, Max: 3})[0]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	first, err := e.EnqueueDiscovery(spec.Ann.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.EnqueueDiscovery(spec.Ann.ID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if second.Seq != first.Seq {
		t.Fatalf("coalesce changed seq %d -> %d", first.Seq, second.Seq)
	}
	if second.Priority != 5 {
		t.Fatalf("coalesce kept priority %d, want upgraded 5", second.Priority)
	}
	st := e.IngestStats()
	if st.QueueDepth != 1 || st.Coalesced != 1 || st.Enqueued != 1 {
		t.Fatalf("depth=%d coalesced=%d enqueued=%d, want 1/1/1", st.QueueDepth, st.Coalesced, st.Enqueued)
	}
}

// TestIngestCDCExactNeighborhood is the change-data-capture precision check:
// a tuple update re-queues EXACTLY the annotations attached within the
// configured K-hop ACG neighborhood of the changed row — asserted by count
// and by set, against the graph's own neighborhood computation.
func TestIngestCDCExactNeighborhood(t *testing.T) {
	e, ds := ingestFixture(t, nil)
	ctx := context.Background()
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})
	for i := 0; i < 4 && i < len(specs); i++ {
		if _, err := e.AddAnnotationAsync(specs[i].Ann, specs[i].Focal(1), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	if d := e.IngestStats().QueueDepth; d != 0 {
		t.Fatalf("queue not empty after flush: %d", d)
	}

	target := specs[0].Focal(1)[0]
	mut, ok := specMutation(specs[0], 0)
	if !ok {
		t.Fatalf("unmutable focal table %s", target.Table)
	}
	affected := e.Graph().AffectedAnnotations([]nebula.TupleID{target}, nebula.DefaultIngestCDCHops)
	if len(affected) == 0 {
		t.Fatal("fixture produced no affected annotations; mutation target must carry attachments")
	}
	if err := applyMutation(e, mut); err != nil {
		t.Fatal(err)
	}
	jobs := e.IngestJobs()
	if len(jobs) != len(affected) {
		t.Fatalf("CDC queued %d jobs, K-hop neighborhood has %d annotations", len(jobs), len(affected))
	}
	want := make(map[nebula.AnnotationID]bool, len(affected))
	for _, id := range affected {
		want[id] = true
	}
	for _, j := range jobs {
		if !want[j.Annotation] {
			t.Fatalf("CDC queued %s, outside the %d-hop neighborhood of %s",
				j.Annotation, nebula.DefaultIngestCDCHops, target)
		}
	}
}

// TestIngestInterleavingConvergence is the determinism property test: a
// seeded random interleaving of async submissions, tuple mutations, partial
// drains, and manual re-enqueues — followed by a concurrent phase where a
// mutator goroutine races the drainer — must converge (after a final
// re-discovery flush) to annotation state byte-identical to a from-scratch
// synchronous engine over the final database. Run under -race, this also
// proves the lock discipline of the CDC capture and drain paths.
func TestIngestInterleavingConvergence(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e, ds := ingestFixture(t, nil)
			ctx := context.Background()
			rng := rand.New(rand.NewSource(seed))
			specs := ds.WorkloadSet(500, workload.RefClass{Min: 1, Max: 6})
			if len(specs) > 10 {
				specs = specs[:10]
			}
			var muts []ingestMutation

			// Phase 1 — sequential random interleaving. Annotations are
			// always added in spec order (store insertion order must match
			// the control); only the interleaving is random.
			added := 0
			for step := 0; added < len(specs) || step < 4*len(specs); step++ {
				switch p := rng.Float64(); {
				case p < 0.45 && added < len(specs):
					spec := specs[added]
					if _, err := e.AddAnnotationAsync(spec.Ann, spec.Focal(1), rng.Intn(3)); err != nil {
						t.Fatalf("submit %s: %v", spec.Ann.ID, err)
					}
					added++
				case p < 0.65 && added > 0:
					if mut, ok := specMutation(specs[rng.Intn(added)], len(muts)); ok {
						muts = append(muts, mut)
						if err := applyMutation(e, mut); err != nil {
							t.Fatal(err)
						}
					}
				case p < 0.9:
					if _, err := e.DrainIngest(ctx, rng.Intn(3)); err != nil {
						t.Fatal(err)
					}
				case added > 0:
					if _, err := e.EnqueueDiscovery(specs[rng.Intn(added)].Ann.ID, rng.Intn(2)); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Phase 2 — mutator races drainer. Each spec is mutated at most
			// once here (distinct n per mutation, one mutation per spec), so
			// the final database state is order-independent.
			concurrent := make([]ingestMutation, 0, len(specs))
			for i, spec := range specs {
				if mut, ok := specMutation(spec, 1000+i); ok {
					concurrent = append(concurrent, mut)
				}
			}
			muts = append(muts, concurrent...)
			var wg sync.WaitGroup
			wg.Add(2)
			errCh := make(chan error, 2)
			go func() {
				defer wg.Done()
				for _, mut := range concurrent {
					if err := applyMutation(e, mut); err != nil {
						errCh <- err
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 2*len(concurrent); i++ {
					if _, err := e.DrainIngest(ctx, 1); err != nil {
						errCh <- err
						return
					}
				}
			}()
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}

			// Phase 3 — convergence: flush the CDC tail, then re-discover
			// every stored annotation over the final database state.
			if _, err := e.FlushIngest(ctx); err != nil {
				t.Fatal(err)
			}
			for _, id := range e.Store().IDs() {
				if _, err := e.EnqueueDiscovery(id, 0); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.FlushIngest(ctx); err != nil {
				t.Fatal(err)
			}
			got := renderIngestState(e)

			// Control — a fresh dataset, the same mutations, the same
			// annotations, synchronous from-scratch processing.
			cds, err := workload.Generate(workload.TinyConfig(crashSeed))
			if err != nil {
				t.Fatal(err)
			}
			control, err := nebula.NewWithState(cds.DB, cds.Meta, cds.Store, cds.Graph, nebula.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, mut := range muts {
				if err := applyMutation(control, mut); err != nil {
					t.Fatal(err)
				}
			}
			cspecs := cds.WorkloadSet(500, workload.RefClass{Min: 1, Max: 6})[:len(specs)]
			for _, spec := range cspecs {
				if err := control.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
					t.Fatal(err)
				}
			}
			for _, r := range control.ProcessBatch(control.Store().IDs()) {
				if r.Err != nil {
					t.Fatalf("control process %s: %v", r.ID, r.Err)
				}
			}
			want := renderIngestState(control)
			if got != want {
				t.Fatalf("streaming state diverged from synchronous control\n--- streaming ---\n%s\n--- control ---\n%s", got, want)
			}
		})
	}
}

// TestIngestQueueSurvivesWALReplay is the crash-durability check the ISSUE
// demands: acknowledged async submissions that were never drained must come
// back from WAL replay — same jobs, same drain order, same sequence counter
// — and draining the recovered engine must reach the exact state the live
// engine reaches.
func TestIngestQueueSurvivesWALReplay(t *testing.T) {
	ds, err := workload.Generate(workload.TinyConfig(crashSeed))
	if err != nil {
		t.Fatal(err)
	}
	opts := nebula.DefaultOptions()
	opts.Ingest = nebula.IngestConfig{Enabled: true}
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	var baseline bytes.Buffer
	if err := e.SaveSnapshot(&baseline); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(l)

	ctx := context.Background()
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})
	for i := 0; i < 3; i++ {
		if _, err := e.AddAnnotationAsync(specs[i].Ann, specs[i].Focal(1), i); err != nil {
			t.Fatal(err)
		}
	}
	// Drain ONE job; the other two stay queued across the crash. Then a
	// mutation re-queues the drained annotation's neighborhood, so the
	// surviving queue mixes discover and rediscover jobs.
	if _, err := e.DrainIngest(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if mut, ok := specMutation(specs[0], 0); ok {
		if err := applyMutation(e, mut); err != nil {
			t.Fatal(err)
		}
	}
	liveJobs := e.IngestJobs()
	if len(liveJobs) < 2 {
		t.Fatalf("fixture left only %d jobs queued", len(liveJobs))
	}
	// Crash: close the log (flushing buffers) and recover from the baseline
	// snapshot plus the segment — the ingest flush a graceful shutdown runs
	// never happens.
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	r, err := nebula.RestoreEngine(bytes.NewReader(baseline.Bytes()), configureWorkloadMeta, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReplayWAL(dir, nil); err != nil {
		t.Fatal(err)
	}
	recJobs := r.IngestJobs()
	if len(recJobs) != len(liveJobs) {
		t.Fatalf("replay rebuilt %d jobs, live had %d", len(recJobs), len(liveJobs))
	}
	for i := range liveJobs {
		lj, rj := liveJobs[i], recJobs[i]
		if lj.Annotation != rj.Annotation || lj.Kind != rj.Kind || lj.Priority != rj.Priority || lj.Seq != rj.Seq {
			t.Fatalf("job %d diverged: live %+v, recovered %+v", i, lj, rj)
		}
	}
	if ls, rs := e.IngestStats().NextSeq, r.IngestStats().NextSeq; ls != rs {
		t.Fatalf("sequence counter diverged: live %d, recovered %d", ls, rs)
	}
	// Both engines drain to completion and must be indistinguishable.
	if _, err := e.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, e) != fingerprint(t, r) {
		t.Fatal("drained state diverged between live and recovered engines")
	}
}

// TestIngestQueueSnapshotRoundTrip asserts a checkpoint carries the queue:
// save with jobs queued, restore, and the restored engine holds the same
// jobs in the same order with the same sequence counter — then both drain
// to identical state.
func TestIngestQueueSnapshotRoundTrip(t *testing.T) {
	e, ds := ingestFixture(t, nil)
	ctx := context.Background()
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})
	for i := 0; i < 3; i++ {
		if _, err := e.AddAnnotationAsync(specs[i].Ann, specs[i].Focal(1), i); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := e.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	opts := nebula.DefaultOptions()
	opts.Ingest = nebula.IngestConfig{Enabled: true}
	r, err := nebula.RestoreEngine(bytes.NewReader(snap.Bytes()), configureWorkloadMeta, opts)
	if err != nil {
		t.Fatal(err)
	}
	liveJobs, recJobs := e.IngestJobs(), r.IngestJobs()
	if len(recJobs) != len(liveJobs) || len(recJobs) != 3 {
		t.Fatalf("restored %d jobs, live has %d, want 3", len(recJobs), len(liveJobs))
	}
	for i := range liveJobs {
		lj, rj := liveJobs[i], recJobs[i]
		if lj.Annotation != rj.Annotation || lj.Kind != rj.Kind || lj.Priority != rj.Priority || lj.Seq != rj.Seq {
			t.Fatalf("job %d diverged: live %+v, restored %+v", i, lj, rj)
		}
	}
	if ls, rs := e.IngestStats().NextSeq, r.IngestStats().NextSeq; ls != rs {
		t.Fatalf("sequence counter diverged: live %d, restored %d", ls, rs)
	}
	if _, err := e.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, e) != fingerprint(t, r) {
		t.Fatal("drained state diverged between live and restored engines")
	}
}
