package nebula_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"nebula"
	"nebula/internal/workload"
)

// Tracing is observe-only: a traced run must produce byte-identical
// results to an untraced run of the same request. These tests run under
// `make check` (they match the Trace name filter) alongside the
// determinism suite.

// traceEngine builds a fresh engine over a freshly generated deterministic
// dataset with result caching disabled, so traced and untraced runs both
// execute the full pipeline.
func traceEngine(t testing.TB) (*nebula.Engine, []*workload.AnnotationSpec) {
	t.Helper()
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.8}
	opts.Cache.Disabled = true
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	specs := ds.Workload[:6]
	for _, spec := range specs {
		if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			t.Fatal(err)
		}
	}
	return e, specs
}

// renderTracedRun folds everything a client can observe — except the trace
// itself — into one canonical string.
func renderTracedRun(d *nebula.Discovery, outcome nebula.VerificationOutcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries=%d degraded=%v\n", len(d.Queries), d.Degraded())
	fmt.Fprintf(&b, "stats searched=%d sq=%d shared=%d scanned=%d cands=%d\n",
		d.ExecStats.SearchedDB, d.ExecStats.Exec.StructuredQueries,
		d.ExecStats.Exec.SharedQueries, d.ExecStats.Exec.TuplesScanned,
		d.ExecStats.Candidates)
	for _, c := range d.Candidates {
		fmt.Fprintf(&b, "cand %v conf=%.9f ev=%v\n", c.Tuple.ID, c.Confidence, c.Evidence)
	}
	for _, a := range outcome.Accepted {
		fmt.Fprintf(&b, "accepted %v v%d\n", a.Tuple, a.VID)
	}
	for _, p := range outcome.Pending {
		fmt.Fprintf(&b, "pending %v v%d\n", p.Tuple, p.VID)
	}
	for _, r := range outcome.Rejected {
		fmt.Fprintf(&b, "rejected %v v%d\n", r.Tuple, r.VID)
	}
	return b.String()
}

// TestTraceByteIdentityDiscover runs the same discoveries on two identical
// engines — one untraced, one traced — and requires byte-identical
// observable output, plus a well-formed span tree on the traced side only.
func TestTraceByteIdentityDiscover(t *testing.T) {
	plain, specs := traceEngine(t)
	traced, _ := traceEngine(t)
	ctx := context.Background()
	for _, spec := range specs {
		dp, err := plain.DiscoverRequest(ctx, spec.Ann.ID, nebula.RequestOptions{})
		if err != nil {
			t.Fatalf("untraced discover %s: %v", spec.Ann.ID, err)
		}
		dt, err := traced.DiscoverRequest(ctx, spec.Ann.ID, nebula.RequestOptions{Trace: true})
		if err != nil {
			t.Fatalf("traced discover %s: %v", spec.Ann.ID, err)
		}
		if dp.Trace != nil {
			t.Errorf("%s: untraced run carries a trace", spec.Ann.ID)
		}
		if dt.Trace == nil {
			t.Fatalf("%s: traced run has no trace", spec.Ann.ID)
		}
		if dt.Trace.Name != "discover" || dt.Trace.SpanCount() < 2 {
			t.Errorf("%s: trace root %q with %d spans, want a discover tree",
				spec.Ann.ID, dt.Trace.Name, dt.Trace.SpanCount())
		}
		a := renderTracedRun(dp, nebula.VerificationOutcome{})
		b := renderTracedRun(dt, nebula.VerificationOutcome{})
		if a != b {
			t.Errorf("%s: traced output diverged\n--- untraced\n%s--- traced\n%s", spec.Ann.ID, a, b)
		}
	}
}

// TestTraceByteIdentityProcess checks the stronger property for the full
// mutating pipeline: verification routing, VID assignment, and the pending
// queue are identical with tracing on and off.
func TestTraceByteIdentityProcess(t *testing.T) {
	plain, specs := traceEngine(t)
	traced, _ := traceEngine(t)
	ctx := context.Background()
	for _, spec := range specs {
		dp, op, err := plain.ProcessRequest(ctx, spec.Ann.ID, nebula.RequestOptions{})
		if err != nil {
			t.Fatalf("untraced process %s: %v", spec.Ann.ID, err)
		}
		dt, ot, err := traced.ProcessRequest(ctx, spec.Ann.ID, nebula.RequestOptions{Trace: true})
		if err != nil {
			t.Fatalf("traced process %s: %v", spec.Ann.ID, err)
		}
		if dt.Trace == nil || dt.Trace.Name != "process" {
			t.Fatalf("%s: traced process has no process-rooted trace", spec.Ann.ID)
		}
		a := renderTracedRun(dp, op)
		b := renderTracedRun(dt, ot)
		if a != b {
			t.Errorf("%s: traced process output diverged\n--- untraced\n%s--- traced\n%s", spec.Ann.ID, a, b)
		}
	}
	var pp, pt strings.Builder
	for _, task := range plain.PendingTasks() {
		fmt.Fprintf(&pp, "v%d %s %v %.9f\n", task.VID, task.Annotation, task.Tuple, task.Confidence)
	}
	for _, task := range traced.PendingTasks() {
		fmt.Fprintf(&pt, "v%d %s %v %.9f\n", task.VID, task.Annotation, task.Tuple, task.Confidence)
	}
	if pp.String() != pt.String() {
		t.Errorf("pending queues diverged\n--- untraced\n%s--- traced\n%s", pp.String(), pt.String())
	}
}

// BenchmarkDiscoveryTraceOff measures the discovery hot path with tracing
// disabled — the instrumentation must add zero allocations here (the
// per-callsite guarantee is asserted in internal/trace's zero-alloc test;
// run with -benchmem to compare against BenchmarkDiscoveryTraceOn).
func BenchmarkDiscoveryTraceOff(b *testing.B) {
	benchmarkDiscoveryTrace(b, false)
}

// BenchmarkDiscoveryTraceOn measures the same discovery with a span tree
// recorded, bounding the observe-only overhead.
func BenchmarkDiscoveryTraceOn(b *testing.B) {
	benchmarkDiscoveryTrace(b, true)
}

func benchmarkDiscoveryTrace(b *testing.B, traced bool) {
	e, specs := traceEngine(b)
	ctx := context.Background()
	req := nebula.RequestOptions{Trace: traced}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.DiscoverRequest(ctx, specs[i%len(specs)].Ann.ID, req); err != nil {
			b.Fatal(err)
		}
	}
}
