package nebula_test

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"nebula"
	"nebula/internal/wal"
	"nebula/internal/workload"
)

// canonicalShardState renders the annotation-side state as an
// order-independent set: every annotation, every attachment (type and
// confidence), every pending verification task (without its VID — queue
// sequence numbers depend on arrival order, which concurrency legitimately
// permutes; what must not vary is the set of verifications demanded).
func canonicalShardState(e *nebula.Engine) string {
	var lines []string
	for _, id := range e.Store().IDs() {
		lines = append(lines, fmt.Sprintf("ann %s", id))
		for _, att := range e.Store().Attachments(id, -1) {
			lines = append(lines, fmt.Sprintf("att %s %s/%s.%s:%d=%.9f",
				id, att.Tuple.Table, att.Tuple.Key, att.Column, att.Type, att.Confidence))
		}
	}
	for _, task := range e.PendingTasks() {
		lines = append(lines, fmt.Sprintf("task %s %s/%s %.9f [%s]",
			task.Annotation, task.Tuple.Table, task.Tuple.Key, task.Confidence, strings.Join(task.Evidence, ",")))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// shardRaceOptions configures both engines of the race test with
// annotation-local discovery (no graph-dependent refinements), so each
// annotation's outcome depends only on the static database — making the
// final state interleaving-independent and comparable across runs.
func shardRaceOptions(n, queueCap int) nebula.Options {
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.8}
	opts.Shards = n
	opts.FocalAdjustment = false
	opts.Spreading = false
	opts.RequireStableACG = false
	opts.Ingest = nebula.IngestConfig{Enabled: true, QueueCap: queueCap}
	return opts
}

// TestShardConcurrentMutationIdentity is the sharding property test (run
// under -race by make check): per-shard mutators, async admissions, ingest
// drains, snapshot captures, and WAL checkpoints all interleave freely on a
// 4-shard engine, and the converged state must be byte-identical (as a
// canonical set) to a from-scratch single-shard engine that applied the
// same operations sequentially.
func TestShardConcurrentMutationIdentity(t *testing.T) {
	ds, err := workload.Generate(workload.TinyConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	queueCap := 4 * (ds.Store.Len() + len(ds.Workload) + 1)
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, shardRaceOptions(4, queueCap))
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(l)

	specs := ds.Workload
	ctx := context.Background()
	done := make(chan struct{})
	errCh := make(chan error, 8)
	// wg tracks the bounded goroutines (writers, snapshots, checkpoints);
	// the drainer loops until they finish, so it gets its own WaitGroup.
	var wg, drainWG sync.WaitGroup

	// Two synchronous writers split the even specs: single-shard
	// AddAnnotation (home-shard write lock) plus EnqueueDiscovery
	// (home shard + ingest admission).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 2 * w; i < len(specs); i += 4 {
				s := specs[i]
				if err := e.AddAnnotation(s.Ann, s.Focal(1)); err != nil {
					errCh <- fmt.Errorf("add %s: %w", s.Ann.ID, err)
					return
				}
				if _, err := e.EnqueueDiscovery(s.Ann.ID, 0); err != nil {
					errCh <- fmt.Errorf("enqueue %s: %w", s.Ann.ID, err)
					return
				}
			}
		}(w)
	}
	// One async writer takes the odd specs through the combined
	// admission path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < len(specs); i += 2 {
			s := specs[i]
			if _, err := e.AddAnnotationAsync(s.Ann, s.Focal(1), 0); err != nil {
				errCh <- fmt.Errorf("async %s: %w", s.Ann.ID, err)
				return
			}
		}
	}()
	// A drainer processes the queue (whole-group lock) while admissions
	// continue on single-shard locks.
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := e.DrainIngest(ctx, 4); err != nil {
				errCh <- fmt.Errorf("drain: %w", err)
				return
			}
		}
	}()
	// Snapshot captures hold the whole-group read lock mid-stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := e.SaveSnapshot(io.Discard); err != nil {
				errCh <- fmt.Errorf("snapshot: %w", err)
				return
			}
		}
	}()
	// WAL checkpoints fold durable history while writers append to it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			path := filepath.Join(walDir, fmt.Sprintf("ckpt-%d.snap", i))
			if err := e.Checkpoint(path); err != nil {
				errCh <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()

	// Release the drainer once the writers, snapshots, and checkpoints have
	// all finished, then wait for its final pass.
	wg.Wait()
	close(done)
	drainWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if _, err := e.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	got := canonicalShardState(e)

	// From-scratch single-shard control: identical operations, sequential,
	// canonical order.
	cds, err := workload.Generate(workload.TinyConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	control, err := nebula.NewWithState(cds.DB, cds.Meta, cds.Store, cds.Graph, shardRaceOptions(1, queueCap))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cds.Workload {
		if err := control.AddAnnotation(s.Ann, s.Focal(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := control.EnqueueDiscovery(s.Ann.ID, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := control.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	want := canonicalShardState(control)

	if got != want {
		t.Errorf("concurrent 4-shard state diverged from sequential single-shard control\n--- control\n%s\n--- concurrent\n%s", want, got)
	}
}
