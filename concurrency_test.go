package nebula_test

import (
	"fmt"
	"sync"
	"testing"

	"nebula"
	"nebula/internal/workload"
)

// TestConcurrentEngineUse exercises the engine from many goroutines at
// once: inserting annotations, processing them, querying with propagation,
// listing/resolving pending tasks, and snapshotting. Run with -race.
func TestConcurrentEngineUse(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.8}
	e, ds := engineFixture(t, opts)

	specs := ds.WorkloadSet(500, workload.RefClass{})
	if len(specs) < 8 {
		t.Fatalf("fixture too small: %d specs", len(specs))
	}
	specs = specs[:8]

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Writers: insert + process annotations.
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec *workload.AnnotationSpec) {
			defer wg.Done()
			if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
				errs <- fmt.Errorf("add %d: %w", i, err)
				return
			}
			if _, _, err := e.Process(spec.Ann.ID); err != nil {
				errs <- fmt.Errorf("process %d: %w", i, err)
			}
		}(i, spec)
	}
	// Readers: propagation queries and pending listings.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				if _, err := e.PropagateQuery(nebula.StructuredQuery{Table: "Gene"}, nil); err != nil {
					errs <- err
					return
				}
				_ = e.PendingTasks()
				_ = e.Bounds()
			}
		}()
	}
	// Expert: keeps resolving whatever is pending.
	wg.Add(1)
	go func() {
		defer wg.Done()
		oracle := nebula.IdealOracle(ds.Ideal)
		for k := 0; k < 20; k++ {
			for _, spec := range specs {
				if _, _, err := e.ResolveWithOracle(spec.Ann.ID, oracle); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Sanity: state is coherent afterwards.
	if e.Store().Len() == 0 || e.Graph().Nodes() == 0 {
		t.Error("engine state lost")
	}
}
