package nebula_test

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"nebula"
	"nebula/internal/workload"
)

// TestConcurrentEngineUse exercises the engine from many goroutines at
// once: inserting annotations, processing them, querying with propagation,
// listing/resolving pending tasks, and snapshotting. Run with -race.
func TestConcurrentEngineUse(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.8}
	e, ds := engineFixture(t, opts)

	specs := ds.WorkloadSet(500, workload.RefClass{})
	if len(specs) < 8 {
		t.Fatalf("fixture too small: %d specs", len(specs))
	}
	specs = specs[:8]

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Writers: insert + process annotations.
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec *workload.AnnotationSpec) {
			defer wg.Done()
			if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
				errs <- fmt.Errorf("add %d: %w", i, err)
				return
			}
			if _, _, err := e.Process(spec.Ann.ID); err != nil {
				errs <- fmt.Errorf("process %d: %w", i, err)
			}
		}(i, spec)
	}
	// Readers: propagation queries and pending listings.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				if _, err := e.PropagateQuery(nebula.StructuredQuery{Table: "Gene"}, nil); err != nil {
					errs <- err
					return
				}
				_ = e.PendingTasks()
				_ = e.Bounds()
			}
		}()
	}
	// Expert: keeps resolving whatever is pending.
	wg.Add(1)
	go func() {
		defer wg.Done()
		oracle := nebula.IdealOracle(ds.Ideal)
		for k := 0; k < 20; k++ {
			for _, spec := range specs {
				if _, _, err := e.ResolveWithOracle(spec.Ann.ID, oracle); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Sanity: state is coherent afterwards.
	if e.Store().Len() == 0 || e.Graph().Nodes() == 0 {
		t.Error("engine state lost")
	}
}

// TestConcurrentBatchUse drives the parallel batch APIs from many
// goroutines at once — disjoint ProcessBatch slices, DiscoverBatch
// readers, snapshot writers, pending listings — on an engine with a
// worker pool (Parallelism = 4). Run with -race. Afterwards the pending
// queue must be exactly the union of the per-batch outcomes: no lost
// tasks, no duplicates, every VID unique.
func TestConcurrentBatchUse(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0.2, Upper: 0.8}
	opts.Parallelism = 4
	e, ds := engineFixture(t, opts)

	specs := ds.WorkloadSet(500, workload.RefClass{})
	if len(specs) < 8 {
		t.Fatalf("fixture too small: %d specs", len(specs))
	}
	specs = specs[:8]
	for i, spec := range specs {
		if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	var mu sync.Mutex
	var outcomes []nebula.BatchResult

	// Processors: each owns a disjoint half of the workload.
	for lo := 0; lo < len(specs); lo += 4 {
		hi := lo + 4
		wg.Add(1)
		go func(part []*workload.AnnotationSpec) {
			defer wg.Done()
			ids := make([]nebula.AnnotationID, len(part))
			for i, s := range part {
				ids[i] = s.Ann.ID
			}
			results := e.ProcessBatch(ids)
			for _, r := range results {
				if r.Err != nil {
					errs <- fmt.Errorf("process %s: %w", r.ID, r.Err)
				}
			}
			mu.Lock()
			outcomes = append(outcomes, results...)
			mu.Unlock()
		}(specs[lo:hi])
	}
	// Rediscoverers: read-only batch discovery racing the processors.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := []nebula.AnnotationID{specs[0].Ann.ID, specs[5].Ann.ID}
			for k := 0; k < 5; k++ {
				for _, r := range e.DiscoverBatch(ids) {
					if r.Err != nil {
						errs <- fmt.Errorf("discover %s: %w", r.ID, r.Err)
						return
					}
				}
			}
		}()
	}
	// Snapshotter and pending readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 5; k++ {
			if err := e.SaveSnapshot(io.Discard); err != nil {
				errs <- fmt.Errorf("snapshot: %w", err)
				return
			}
			_ = e.PendingTasks()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Consistency: the queue holds exactly the tasks the batches reported
	// pending (order-insensitive; interleaving may vary VID assignment).
	want := 0
	seen := make(map[int64]bool)
	for _, r := range outcomes {
		want += len(r.Outcome.Pending)
		for _, p := range r.Outcome.Pending {
			if seen[p.VID] {
				t.Errorf("VID %d assigned twice", p.VID)
			}
			seen[p.VID] = true
		}
	}
	tasks := e.PendingTasks()
	if len(tasks) != want {
		t.Errorf("pending queue has %d tasks, batches reported %d", len(tasks), want)
	}
	for _, task := range tasks {
		if !seen[task.VID] {
			t.Errorf("queued VID %d missing from batch outcomes", task.VID)
		}
	}
}

// TestConcurrentRequestOptions races read-locked DiscoverRequest calls with
// different per-request governance overlays against snapshot captures. The
// overlay is applied per call, never written back: the engine's configured
// options must be untouched afterwards, and runs with identical overlays
// must produce identical candidate sets whatever interleaving occurred.
// Run with -race.
func TestConcurrentRequestOptions(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	specs := ds.WorkloadSet(500, workload.RefClass{})
	if len(specs) < 2 {
		t.Fatalf("fixture too small: %d specs", len(specs))
	}
	for i, spec := range specs[:2] {
		if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	id := specs[0].Ann.ID
	before := e.Options()

	render := func(d *nebula.Discovery) string {
		var b strings.Builder
		for _, c := range d.Candidates {
			fmt.Fprintf(&b, "%v=%.9f;", c.Tuple.ID, c.Confidence)
		}
		return b.String()
	}
	baseline, err := e.DiscoverRequest(context.Background(), id, nebula.RequestOptions{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	truncated, err := e.DiscoverRequest(context.Background(), id, nebula.RequestOptions{MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(truncated.Candidates) > 1 {
		t.Errorf("MaxCandidates=1 overlay returned %d candidates", len(truncated.Candidates))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := nebula.RequestOptions{MaxCandidates: 3, Parallelism: 1 + g%3}
			for k := 0; k < 5; k++ {
				d, err := e.DiscoverRequest(context.Background(), id, req)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				if got := render(d); got != render(baseline) {
					errs <- fmt.Errorf("goroutine %d: overlay run diverged: %q vs %q", g, got, render(baseline))
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 5; k++ {
			if err := e.SaveSnapshot(io.Discard); err != nil {
				errs <- fmt.Errorf("snapshot: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Per-request overlays must never leak into the engine's options.
	after := e.Options()
	if after.Budget != before.Budget || after.Parallelism != before.Parallelism {
		t.Errorf("engine options mutated by request overlays: before %+v/%d, after %+v/%d",
			before.Budget, before.Parallelism, after.Budget, after.Parallelism)
	}
}
