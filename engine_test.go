package nebula_test

import (
	"testing"

	"nebula"
	"nebula/internal/workload"
)

// engineFixture builds a tiny synthetic dataset and an engine layered on
// its pre-annotated state.
func engineFixture(t testing.TB, opts nebula.Options) (*nebula.Engine, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, ds
}

func TestNewValidation(t *testing.T) {
	ds, err := workload.Generate(workload.TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	bad := nebula.DefaultOptions()
	bad.Epsilon = 2
	if _, err := nebula.New(ds.DB, ds.Meta, bad); err == nil {
		t.Error("invalid epsilon accepted")
	}
	bad = nebula.DefaultOptions()
	bad.Bounds = nebula.Bounds{Lower: 0.9, Upper: 0.1}
	if _, err := nebula.New(ds.DB, ds.Meta, bad); err == nil {
		t.Error("invalid bounds accepted")
	}
	if _, err := nebula.New(nil, ds.Meta, nebula.DefaultOptions()); err == nil {
		t.Error("nil db accepted")
	}
}

func TestAddAnnotationValidatesTargets(t *testing.T) {
	e, _ := engineFixture(t, nebula.DefaultOptions())
	err := e.AddAnnotation(&nebula.Annotation{ID: "x", Body: "b"},
		[]nebula.TupleID{{Table: "Gene", Key: "s:missing"}})
	if err == nil {
		t.Error("dangling attach target accepted")
	}
}

// TestEndToEndDiscovery inserts workload annotations with Δ=1 focal and
// checks that Process recovers a meaningful share of the hidden
// attachments, improving the database's F_N.
func TestEndToEndDiscovery(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())

	specs := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})
	var recovered, hiddenTotal int
	for _, spec := range specs {
		focal := spec.Focal(1)
		if err := e.AddAnnotation(spec.Ann, focal); err != nil {
			t.Fatal(err)
		}
		disc, outcome, err := e.Process(spec.Ann.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(disc.Queries) == 0 {
			t.Fatalf("%s: no queries generated from %q", spec.Ann.ID, spec.Ann.Body)
		}
		// Resolve pending tasks with the ground-truth oracle.
		if _, _, err := e.ResolveWithOracle(spec.Ann.ID, nebula.IdealOracle(ds.Ideal)); err != nil {
			t.Fatal(err)
		}
		_ = outcome
		// Count recovered hidden attachments.
		for _, h := range spec.Hidden(1) {
			hiddenTotal++
			if att, ok := e.Store().Edge(spec.Ann.ID, h); ok && att.Type == nebula.TrueAttachment {
				recovered++
			}
		}
	}
	if hiddenTotal == 0 {
		t.Fatal("no hidden attachments in fixture")
	}
	ratio := float64(recovered) / float64(hiddenTotal)
	if ratio < 0.6 {
		t.Errorf("recovered only %d/%d (%.0f%%) hidden attachments", recovered, hiddenTotal, 100*ratio)
	}
}

func TestProcessImprovesQuality(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	spec := ds.WorkloadSet(1000, workload.RefClass{Min: 4, Max: 6})[0]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	before := e.Quality(ds.Ideal)
	if _, _, err := e.Process(spec.Ann.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ResolveWithOracle(spec.Ann.ID, nebula.IdealOracle(ds.Ideal)); err != nil {
		t.Fatal(err)
	}
	after := e.Quality(ds.Ideal)
	if after.FalseNegativeRatio >= before.FalseNegativeRatio {
		t.Errorf("F_N did not improve: %f -> %f", before.FalseNegativeRatio, after.FalseNegativeRatio)
	}
}

func TestNaiveDiscoverIsNoisier(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	spec := ds.WorkloadSet(100, workload.RefClass{Min: 1, Max: 3})[0]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	nebulaDisc, err := e.Discover(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	naiveDisc, err := e.NaiveDiscover(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(naiveDisc.Candidates) <= len(nebulaDisc.Candidates) {
		t.Errorf("naive %d candidates vs nebula %d — expected naive to be noisier",
			len(naiveDisc.Candidates), len(nebulaDisc.Candidates))
	}
	if naiveDisc.ExecStats.Exec.TuplesScanned < e.DB().TotalRows() {
		t.Error("naive should scan the whole database")
	}
}

func TestVerifyRejectCommands(t *testing.T) {
	opts := nebula.DefaultOptions()
	// Force everything into the pending band.
	opts.Bounds = nebula.Bounds{Lower: 0, Upper: 1}
	e, ds := engineFixture(t, opts)
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[1]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	_, outcome, err := e.Process(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome.Pending) == 0 {
		t.Fatal("expected pending tasks with [0,1] bounds")
	}
	tasks := e.PendingTasks()
	if len(tasks) != len(outcome.Pending) {
		t.Fatalf("pending table: %d vs %d", len(tasks), len(outcome.Pending))
	}
	if err := e.VerifyAttachment(tasks[0].VID); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Store().Edge(spec.Ann.ID, tasks[0].Tuple); !ok {
		t.Error("verified attachment missing")
	}
	if len(tasks) > 1 {
		if err := e.RejectAttachment(tasks[1].VID); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.VerifyAttachment(99999); err == nil {
		t.Error("verify of unknown vid should fail")
	}
	if err := e.RejectAttachment(99999); err == nil {
		t.Error("reject of unknown vid should fail")
	}
}

func TestSpreadingEngineOption(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.Spreading = true
	opts.SpreadingK = 2
	e, ds := engineFixture(t, opts)
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[2]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(2)); err != nil {
		t.Fatal(err)
	}
	disc, err := e.Discover(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !disc.ExecStats.MiniDBUsed {
		t.Error("spreading did not build a miniDB")
	}
	if disc.ExecStats.SearchedDB >= e.DB().TotalRows() {
		t.Error("spreading searched the whole database")
	}
}

func TestAutomaticKSelection(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.Spreading = true
	opts.SpreadingK = 0 // auto
	opts.SpreadingCoverage = 0.9
	e, ds := engineFixture(t, opts)
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 1, Max: 3})[0]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	// Empty profile falls back to K=3; the discover must still work.
	disc, err := e.Discover(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !disc.ExecStats.MiniDBUsed {
		t.Error("auto-K spreading did not run")
	}
}

func TestSymbolTableTechnique(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.SearchTechnique = nebula.TechniqueSymbolTable
	e, ds := engineFixture(t, opts)
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[3]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	disc, err := e.Discover(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The alternative technique must still recover a good share of the
	// hidden references.
	hidden := map[nebula.TupleID]bool{}
	for _, h := range spec.Hidden(1) {
		hidden[h] = true
	}
	found := 0
	for _, c := range disc.Candidates {
		if hidden[c.Tuple.ID] {
			found++
		}
	}
	if found == 0 {
		t.Errorf("symbol-table technique found none of %d hidden refs: %v", len(hidden), disc.Candidates)
	}
	// Index staleness is a documented property: new tuples appear only
	// after RefreshSearchIndex.
	e.RefreshSearchIndex()
	if _, err := e.Discover(spec.Ann.ID); err != nil {
		t.Fatal(err)
	}
}

func TestSpamFractionOption(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.SpamFraction = 2 // invalid
	ds, err := workload.Generate(workload.TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nebula.New(ds.DB, ds.Meta, opts); err == nil {
		t.Error("invalid spam fraction accepted")
	}
	opts.SpamFraction = 0.5
	opts.SearchTechnique = "bogus"
	if _, err := nebula.New(ds.DB, ds.Meta, opts); err == nil {
		t.Error("unknown technique accepted")
	}
}

func TestTuneBounds(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	var training []nebula.TrainingExample
	for _, spec := range ds.TrainingSet(15) {
		training = append(training, nebula.TrainingExample{
			Annotation: spec.Ann,
			Ideal:      spec.Related,
		})
	}
	cfg := nebula.DefaultBoundsConfig()
	bounds, evals, err := e.TuneBounds(training, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) == 0 {
		t.Fatal("no evaluations")
	}
	if e.Bounds() != bounds {
		t.Error("tuned bounds not installed")
	}
}

func TestPropagateQueryThroughEngine(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	// Pick a base annotation and query one of its tuples.
	spec := ds.Base[0]
	target := spec.Related[0]
	row, ok := e.DB().Lookup(target)
	if !ok {
		t.Fatal("fixture tuple missing")
	}
	pk := row.MustGet(row.Schema().PrimaryKey)
	out, err := e.PropagateQuery(nebula.StructuredQuery{
		Table: target.Table,
		Predicates: []nebula.Predicate{
			{Column: row.Schema().PrimaryKey, Op: nebula.OpEq, Operand: pk},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Annotations) == 0 {
		t.Fatalf("propagation failed: %+v", out)
	}
	found := false
	for _, a := range out[0].Annotations {
		if a.ID == spec.Ann.ID {
			found = true
		}
	}
	if !found {
		t.Error("attached annotation did not propagate")
	}
}

func TestDeleteTupleIntegrity(t *testing.T) {
	opts := nebula.DefaultOptions()
	opts.Bounds = nebula.Bounds{Lower: 0, Upper: 1} // everything pending
	e, ds := engineFixture(t, opts)
	spec := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[0]
	if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
		t.Fatal(err)
	}
	_, outcome, err := e.Process(spec.Ann.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome.Pending) == 0 {
		t.Fatal("fixture produced no pending tasks")
	}
	victim := outcome.Pending[0].Tuple
	wasAttached := len(e.Store().TupleAnnotations(victim, -1))

	detached, cancelled, err := e.DeleteTuple(victim)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled == 0 {
		t.Error("pending task not cancelled")
	}
	if detached != wasAttached {
		t.Errorf("detached %d attachments, tuple had %d", detached, wasAttached)
	}
	// The tuple is gone everywhere.
	if _, ok := e.DB().Lookup(victim); ok {
		t.Error("tuple still in database")
	}
	if len(e.Store().TupleAnnotations(victim, -1)) != 0 {
		t.Error("attachments remain")
	}
	if e.Graph().Contains(victim) {
		t.Error("ACG node remains")
	}
	for _, task := range e.PendingTasks() {
		if task.Tuple == victim {
			t.Error("pending task remains")
		}
	}
	// Deleting again fails cleanly.
	if _, _, err := e.DeleteTuple(victim); err == nil {
		t.Error("double delete should fail")
	}
	if _, _, err := e.DeleteTuple(nebula.TupleID{Table: "Nope", Key: "s:x"}); err == nil {
		t.Error("unknown table should fail")
	}
	// The engine keeps working after the deletion.
	if _, err := e.Discover(spec.Ann.ID); err != nil {
		t.Fatalf("discovery after delete: %v", err)
	}
}

func TestPropagateJoinThroughEngine(t *testing.T) {
	e, ds := engineFixture(t, nebula.DefaultOptions())
	// Find a protein and annotate its gene; the annotation must propagate
	// to the joined Protein⋈Gene row.
	pt := e.DB().MustTable("Protein")
	protein := pt.Rows()[0]
	geneID := protein.MustGet("GeneID")
	gene, ok := e.DB().MustTable("Gene").GetByPK(geneID)
	if !ok {
		t.Fatal("fixture gene missing")
	}
	if err := e.AddAnnotation(&nebula.Annotation{ID: "join-note", Body: "x"},
		[]nebula.TupleID{gene.ID}); err != nil {
		t.Fatal(err)
	}
	out, err := e.PropagateJoin(
		nebula.StructuredQuery{Table: "Protein", Predicates: []nebula.Predicate{
			{Column: "PID", Op: nebula.OpEq, Operand: protein.MustGet("PID")},
		}},
		nebula.StructuredQuery{Table: "Gene"},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("joined rows = %d", len(out))
	}
	found := false
	for _, a := range out[0].Annotations {
		if a.ID == "join-note" {
			found = true
		}
	}
	if !found {
		t.Errorf("gene annotation did not propagate to the joined row: %v", out[0].Annotations)
	}
	_ = ds
}

func TestDiscoverUnknownAnnotation(t *testing.T) {
	e, _ := engineFixture(t, nebula.DefaultOptions())
	if _, err := e.Discover("nope"); err == nil {
		t.Error("unknown annotation should fail")
	}
	if _, err := e.NaiveDiscover("nope"); err == nil {
		t.Error("unknown annotation should fail")
	}
	if _, _, err := e.Process("nope"); err == nil {
		t.Error("unknown annotation should fail")
	}
}
