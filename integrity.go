package nebula

import (
	"fmt"

	"nebula/internal/annotation"
)

// IntegrityReport lists cross-structure inconsistencies found by
// CheckIntegrity. An empty Problems slice means the engine state is
// coherent.
type IntegrityReport struct {
	// Problems describes each violation found.
	Problems []string
	// Attachments, GraphNodes, PendingTasks are the checked cardinalities.
	Attachments  int
	GraphNodes   int
	PendingTasks int
}

// OK reports whether no problems were found.
func (r *IntegrityReport) OK() bool { return len(r.Problems) == 0 }

// CheckIntegrity audits the invariants that tie the engine's structures
// together:
//
//  1. every attachment's tuple exists in the database and its annotation in
//     the store;
//  2. every ACG node is a tuple with at least one attachment (and exists in
//     the database);
//  3. every pending verification task references a live annotation and a
//     live tuple, with confidence inside the pending band;
//  4. true attachments carry confidence 1 and predictions stay below 1.
//
// A healthy engine maintains these automatically (DeleteTuple cleans up all
// four structures); CheckIntegrity exists for state restored from external
// snapshots or mutated through the raw accessors.
func (e *Engine) CheckIntegrity() *IntegrityReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	report := &IntegrityReport{}
	add := func(format string, args ...interface{}) {
		report.Problems = append(report.Problems, fmt.Sprintf(format, args...))
	}

	// 1 + 4 — attachments.
	for _, id := range e.store.IDs() {
		for _, att := range e.store.Attachments(id, -1) {
			report.Attachments++
			if _, ok := e.db.Lookup(att.Tuple); !ok {
				add("attachment %s -> %s: tuple not in database", att.Annotation, att.Tuple)
			}
			switch att.Type {
			case annotation.TrueAttachment:
				if att.Confidence != 1 {
					add("true attachment %s -> %s has confidence %f", att.Annotation, att.Tuple, att.Confidence)
				}
			default:
				if att.Confidence < 0 || att.Confidence >= 1 {
					add("prediction %s -> %s has confidence %f", att.Annotation, att.Tuple, att.Confidence)
				}
			}
		}
	}

	// 2 — ACG nodes.
	for id, tuples := range e.graph.AttachmentList() {
		if _, ok := e.store.Get(id); !ok {
			add("ACG annotation %s not in store", id)
		}
		for _, t := range tuples {
			report.GraphNodes++
			if _, ok := e.db.Lookup(t); !ok {
				add("ACG node %s not in database", t)
			}
		}
	}

	// 3 — pending tasks.
	bounds := e.manager.Bounds()
	for _, task := range e.manager.PendingTasks() {
		report.PendingTasks++
		if _, ok := e.store.Get(task.Annotation); !ok {
			add("pending task v%d references unknown annotation %s", task.VID, task.Annotation)
		}
		if _, ok := e.db.Lookup(task.Tuple); !ok {
			add("pending task v%d references missing tuple %s", task.VID, task.Tuple)
		}
		if task.Confidence < bounds.Lower || task.Confidence > bounds.Upper {
			// Bounds may legitimately have been retuned after submission;
			// report it so operators can re-route the queue.
			add("pending task v%d confidence %.3f outside current bounds [%.2f, %.2f]",
				task.VID, task.Confidence, bounds.Lower, bounds.Upper)
		}
	}
	return report
}
