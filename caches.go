package nebula

import (
	"fmt"
	"sort"
	"strings"

	"nebula/internal/cache"
)

// CacheCounters re-exports one cache layer's counter snapshot.
type CacheCounters = cache.Stats

// CacheStats reports the engine's result caches, one entry per layer:
// the relational scan cache, the keyword structured-query cache, the
// mapper memoization, and the whole-pipeline discovery cache.
type CacheStats struct {
	// Enabled reports whether the engine was built with caching on.
	Enabled bool `json:"enabled"`
	// Scan is the relational full-scan result cache.
	Scan CacheCounters `json:"scan"`
	// Query is the keyword structured-query result cache.
	Query CacheCounters `json:"query"`
	// Mapping is the keyword→schema-element weight memoization.
	Mapping CacheCounters `json:"mapping"`
	// Discovery is the whole-pipeline discovery cache.
	Discovery CacheCounters `json:"discovery"`
}

// Totals sums the four layers (hit rates over Totals describe the stack
// as a whole; MaxBytes sums to the configured overall budget).
func (s CacheStats) Totals() CacheCounters {
	var t CacheCounters
	t.Add(s.Scan)
	t.Add(s.Query)
	t.Add(s.Mapping)
	t.Add(s.Discovery)
	return t
}

// CacheStats returns a snapshot of the engine's cache counters. Safe for
// concurrent use; the caches synchronize internally.
func (e *Engine) CacheStats() CacheStats {
	s := CacheStats{Enabled: e.discCache != nil}
	s.Scan = e.db.ScanCacheStats()
	s.Query = e.queryCache.ResultStats()
	s.Mapping = e.queryCache.MappingStats()
	s.Discovery = e.discCache.Stats()
	return s
}

// SetCacheLimit resizes the total cache budget (split evenly across the
// layers), evicting as needed. It is the live-resize half of the sqlish
// `CACHE <bytes>` governor. On an engine built with caching disabled it
// returns an error rather than silently doing nothing.
func (e *Engine) SetCacheLimit(maxBytes int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.setCacheLimit(maxBytes)
}

func (e *Engine) setCacheLimit(maxBytes int64) error {
	if maxBytes <= 0 {
		return fmt.Errorf("nebula: cache budget %d must be positive", maxBytes)
	}
	if e.discCache == nil {
		return fmt.Errorf("nebula: caching is disabled on this engine")
	}
	per := maxBytes / 3
	e.db.SetScanCacheLimit(per)
	e.queryCache.SetMaxBytes(per)
	e.discCache.SetMaxBytes(per)
	e.opts.Cache.MaxBytes = maxBytes
	return nil
}

// graphDependent reports whether a discovery configured with opts reads
// shared annotation-side state (the ACG and hop profile) rather than only
// the database, the metadata repository, and the search index. Focal
// adjustment walks ACG path weights, spreading reads graph neighborhoods
// (and sizes K off the hop profile), and RequireStableACG consults the
// graph's stability tracker; everything else in the pipeline is a pure
// function of the database and the annotation's own body/focal.
func graphDependent(opts Options) bool {
	return opts.FocalAdjustment || opts.Spreading || opts.RequireStableACG
}

// cacheEpochFor combines the database's data epoch with a mutation epoch:
// any change that could alter a discovery's result moves it, invalidating
// cached discoveries. Graph-dependent runs read state any shard's mutation
// can move, so they live in the whole-engine epoch (the sum over shards —
// shard-count-invariant for sequential workloads). Annotation-local runs
// depend only on the database, the index, and their own shard's mutations,
// so they are stamped with the home shard's epoch alone: a write homed
// elsewhere leaves them live. Both components are monotone, so a matching
// epoch means nothing the result depends on has changed.
func (e *Engine) cacheEpochFor(home int, opts Options) uint64 {
	if graphDependent(opts) {
		return e.db.Epoch() + e.mu.EpochSum()
	}
	return e.db.Epoch() + e.mu.Epoch(home)
}

// bumpMutEpochFor records an annotation-side mutation attributable to one
// annotation (attachments, verification decisions, profile updates) on that
// annotation's home shard. Data-side mutations are tracked by the
// per-table epochs.
func (e *Engine) bumpMutEpochFor(id AnnotationID) {
	e.mu.Bump(e.mu.Home(string(id)))
}

// bumpMutEpochAll records a mutation whose effect is not confined to one
// annotation (tuple deletions, index refreshes, bounds changes): every
// shard's epoch moves, so every cached discovery dies.
func (e *Engine) bumpMutEpochAll() { e.mu.BumpAll() }

// discoveryCacheKey fingerprints everything a discovery run's clean
// result depends on besides engine state: the annotation text
// (whitespace-normalized, order preserved — signature-map generation is
// word-order- and context-sensitive through Alpha, so a token multiset
// would over-merge), the focal set, and the options that shape the
// pipeline. Parallelism, Deadline, and Trace are excluded: the first
// changes only scheduling, only clean (non-truncated) runs are ever
// cached, and tracing is observe-only — a traced and an untraced request
// for the same annotation share one cached answer.
func discoveryCacheKey(body string, focal []TupleID, opts Options, k int) string {
	var b strings.Builder
	b.Grow(len(body) + 16*len(focal) + 96)
	b.WriteString(strings.Join(strings.Fields(body), " "))
	b.WriteByte(0)
	ids := make([]string, len(focal))
	for i, f := range focal {
		ids[i] = f.String()
	}
	sort.Strings(ids)
	for _, id := range ids {
		b.WriteString(id)
		b.WriteByte(1)
	}
	b.WriteByte(0)
	fmt.Fprintf(&b, "%g|%d|%t|%t|%d|%t|%d|%g|%t|%t|%s|%g|%d|%d|%d|%t|%d",
		opts.Epsilon, opts.Alpha, opts.SharedExecution, opts.FocalAdjustment,
		opts.AdjustmentHops, opts.Spreading, k, opts.SpreadingCoverage,
		opts.RequireStableACG, opts.IncludeRelated, opts.SearchTechnique,
		opts.SpamFraction, opts.Budget.MaxQueries, opts.Budget.MaxCandidates,
		opts.Budget.MaxSearchedRows, opts.Plan, opts.TopK)
	return b.String()
}

// discoveryCost approximates the memory held by one cached discovery.
func discoveryCost(key string, d *Discovery) int64 {
	cost := int64(len(key)) + 256
	cost += int64(len(d.Queries)) * 96
	for _, c := range d.Candidates {
		cost += 96
		for _, ev := range c.Evidence {
			cost += int64(len(ev)) + 16
		}
	}
	return cost
}
