package nebula

import (
	"fmt"
	"sort"
	"strings"

	"nebula/internal/cache"
)

// CacheCounters re-exports one cache layer's counter snapshot.
type CacheCounters = cache.Stats

// CacheStats reports the engine's result caches, one entry per layer:
// the relational scan cache, the keyword structured-query cache, the
// mapper memoization, and the whole-pipeline discovery cache.
type CacheStats struct {
	// Enabled reports whether the engine was built with caching on.
	Enabled bool `json:"enabled"`
	// Scan is the relational full-scan result cache.
	Scan CacheCounters `json:"scan"`
	// Query is the keyword structured-query result cache.
	Query CacheCounters `json:"query"`
	// Mapping is the keyword→schema-element weight memoization.
	Mapping CacheCounters `json:"mapping"`
	// Discovery is the whole-pipeline discovery cache.
	Discovery CacheCounters `json:"discovery"`
}

// Totals sums the four layers (hit rates over Totals describe the stack
// as a whole; MaxBytes sums to the configured overall budget).
func (s CacheStats) Totals() CacheCounters {
	var t CacheCounters
	t.Add(s.Scan)
	t.Add(s.Query)
	t.Add(s.Mapping)
	t.Add(s.Discovery)
	return t
}

// CacheStats returns a snapshot of the engine's cache counters. Safe for
// concurrent use; the caches synchronize internally.
func (e *Engine) CacheStats() CacheStats {
	s := CacheStats{Enabled: e.discCache != nil}
	s.Scan = e.db.ScanCacheStats()
	s.Query = e.queryCache.ResultStats()
	s.Mapping = e.queryCache.MappingStats()
	s.Discovery = e.discCache.Stats()
	return s
}

// SetCacheLimit resizes the total cache budget (split evenly across the
// layers), evicting as needed. It is the live-resize half of the sqlish
// `CACHE <bytes>` governor. On an engine built with caching disabled it
// returns an error rather than silently doing nothing.
func (e *Engine) SetCacheLimit(maxBytes int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.setCacheLimit(maxBytes)
}

func (e *Engine) setCacheLimit(maxBytes int64) error {
	if maxBytes <= 0 {
		return fmt.Errorf("nebula: cache budget %d must be positive", maxBytes)
	}
	if e.discCache == nil {
		return fmt.Errorf("nebula: caching is disabled on this engine")
	}
	per := maxBytes / 3
	e.db.SetScanCacheLimit(per)
	e.queryCache.SetMaxBytes(per)
	e.discCache.SetMaxBytes(per)
	e.opts.Cache.MaxBytes = maxBytes
	return nil
}

// cacheEpoch combines the database's data epoch with the engine's
// annotation-mutation epoch: any change that could alter a discovery's
// result moves it, invalidating cached discoveries.
func (e *Engine) cacheEpoch() uint64 {
	return e.db.Epoch() + e.mutEpoch.Load()
}

// bumpMutEpoch records an annotation-side mutation (attachments, ACG
// edges, verification decisions, profile updates, index refreshes).
// Data-side mutations are tracked by the per-table epochs.
func (e *Engine) bumpMutEpoch() { e.mutEpoch.Add(1) }

// discoveryCacheKey fingerprints everything a discovery run's clean
// result depends on besides engine state: the annotation text
// (whitespace-normalized, order preserved — signature-map generation is
// word-order- and context-sensitive through Alpha, so a token multiset
// would over-merge), the focal set, and the options that shape the
// pipeline. Parallelism, Deadline, and Trace are excluded: the first
// changes only scheduling, only clean (non-truncated) runs are ever
// cached, and tracing is observe-only — a traced and an untraced request
// for the same annotation share one cached answer.
func discoveryCacheKey(body string, focal []TupleID, opts Options, k int) string {
	var b strings.Builder
	b.Grow(len(body) + 16*len(focal) + 96)
	b.WriteString(strings.Join(strings.Fields(body), " "))
	b.WriteByte(0)
	ids := make([]string, len(focal))
	for i, f := range focal {
		ids[i] = f.String()
	}
	sort.Strings(ids)
	for _, id := range ids {
		b.WriteString(id)
		b.WriteByte(1)
	}
	b.WriteByte(0)
	fmt.Fprintf(&b, "%g|%d|%t|%t|%d|%t|%d|%g|%t|%t|%s|%g|%d|%d|%d|%t|%d",
		opts.Epsilon, opts.Alpha, opts.SharedExecution, opts.FocalAdjustment,
		opts.AdjustmentHops, opts.Spreading, k, opts.SpreadingCoverage,
		opts.RequireStableACG, opts.IncludeRelated, opts.SearchTechnique,
		opts.SpamFraction, opts.Budget.MaxQueries, opts.Budget.MaxCandidates,
		opts.Budget.MaxSearchedRows, opts.Plan, opts.TopK)
	return b.String()
}

// discoveryCost approximates the memory held by one cached discovery.
func discoveryCost(key string, d *Discovery) int64 {
	cost := int64(len(key)) + 256
	cost += int64(len(d.Queries)) * 96
	for _, c := range d.Candidates {
		cost += 96
		for _, ev := range c.Evidence {
			cost += int64(len(ev)) + 16
		}
	}
	return cost
}
