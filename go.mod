module nebula

go 1.22
