package nebula_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"nebula"
	"nebula/internal/workload"
)

// restoreFromFile restores a snapshot written by the fixture engines,
// rebuilding the NebulaMeta configuration deterministically so two
// restores of the same file produce identical engines.
func restoreFromFile(t *testing.T, path string, opts nebula.Options) *nebula.Engine {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	e, err := nebula.RestoreEngine(f, func(db *nebula.Database) (*nebula.MetaRepository, error) {
		return workload.BuildMeta(db, rand.New(rand.NewSource(11)))
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// These tests pin the engine-level contract of the disk-backed index
// substrate (Options.Store): discovery output in disk mode is
// byte-identical to heap mode, snapshots pair with segment generations so
// a restart adopts the mapped segments without a rebuild, and a segment
// directory with foreign history is rebuilt instead of trusted.

// storeOpts returns symbol-table options with the disk substrate at dir
// (empty = heap mode). Caching is off so both engines do the full work.
func storeOpts(dir string) nebula.Options {
	opts := nebula.DefaultOptions()
	opts.SearchTechnique = nebula.TechniqueSymbolTable
	opts.Cache = nebula.CacheConfig{Disabled: true}
	opts.Store = nebula.StoreConfig{Dir: dir}
	return opts
}

// discoverAll adds every spec and renders its discovery — the identity
// string the disk and heap engines must agree on byte for byte.
func discoverAll(t *testing.T, e *nebula.Engine, specs []*workload.AnnotationSpec, add bool) []string {
	t.Helper()
	out := make([]string, 0, len(specs))
	for _, spec := range specs {
		if add {
			if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
				t.Fatal(err)
			}
		}
		disc, err := e.Discover(spec.Ann.ID)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, renderDiscovery(disc))
	}
	return out
}

// TestStoreDiscoveryIdentity: a disk-mode engine answers every discovery
// byte-identically to the heap-mode engine over the same dataset — before
// any flush (pure tail), after a flush (segments + empty tail), and after
// mutations (segments + dirty-row tail).
func TestStoreDiscoveryIdentity(t *testing.T) {
	heap, ds := engineFixture(t, storeOpts(""))
	disk, _ := engineFixture(t, storeOpts(t.TempDir()))
	t.Cleanup(func() { disk.CloseStore() })
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 1, Max: 3})
	if len(specs) > 4 {
		specs = specs[:4]
	}

	want := discoverAll(t, heap, specs, true)
	got := discoverAll(t, disk, specs, true)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pre-flush: spec %d diverged\nheap: %s\ndisk: %s", i, want[i], got[i])
		}
	}

	// Flush the tail into segments; answers must not move.
	if err := disk.FlushStore(t.Context()); err != nil {
		t.Fatal(err)
	}
	st := disk.StoreStats()
	if !st.Enabled || st.Store.Segments == 0 || st.TailPostings != 0 {
		t.Fatalf("after flush: %+v", st)
	}
	got = discoverAll(t, disk, specs, false)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("post-flush: spec %d diverged\nheap: %s\ndisk: %s", i, want[i], got[i])
		}
	}

	// Mutate a row both engines index, refresh both, and re-compare: the
	// disk engine re-indexes only the dirty row, the heap engine rebuilds
	// everything — same answers either way.
	mut := func(e *nebula.Engine) {
		if err := e.MutateDB(func(db *nebula.Database) error {
			row := db.MustTable("Gene").Rows()[0]
			return db.MustTable("Gene").UpdateByKey(row.ID.Key, "Name", nebula.String("renamed-gene"))
		}); err != nil {
			t.Fatal(err)
		}
		e.RefreshSearchIndex()
	}
	mut(heap)
	mut(disk)
	want = discoverAll(t, heap, specs, false)
	got = discoverAll(t, disk, specs, false)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("post-mutation: spec %d diverged\nheap: %s\ndisk: %s", i, want[i], got[i])
		}
	}
}

// TestStoreSnapshotRestartAdoptsSegments: a snapshot written in disk mode
// pairs with the segment generation it flushed; restoring it over the
// same directory maps the segments back in with NO full re-index, and the
// restored engine still answers identically to a fresh heap engine.
func TestStoreSnapshotRestartAdoptsSegments(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.nebsnap")
	storeDir := filepath.Join(dir, "segments")

	disk, ds := engineFixture(t, storeOpts(storeDir))
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 1, Max: 3})[:2]
	for _, spec := range specs {
		if err := disk.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Prime the index (first discovery triggers the full re-index into the
	// tail), then snapshot: the capture and the tail flush are paired.
	if _, err := disk.Discover(specs[0].Ann.ID); err != nil {
		t.Fatal(err)
	}
	if err := disk.SaveSnapshotFile(snapPath); err != nil {
		t.Fatal(err)
	}
	if st := disk.StoreStats(); st.Store.Segments == 0 || st.Store.Seq == 0 {
		t.Fatalf("snapshot did not flush the tail: %+v", st)
	}
	if err := disk.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Restore the SAME snapshot twice — once in heap mode, once over the
	// segment directory — so both engines share state and meta exactly; the
	// only difference is where the postings live.
	heap := restoreFromFile(t, snapPath, storeOpts(""))
	want := discoverAll(t, heap, specs, false)

	restored := restoreFromFile(t, snapPath, storeOpts(storeDir))
	t.Cleanup(func() { restored.CloseStore() })
	st := restored.StoreStats()
	if st.FullPending {
		t.Fatalf("restore over matching segments still wants a full re-index: %+v", st)
	}
	if st.Store.Segments == 0 || st.Store.Resets != 0 {
		t.Fatalf("restore did not adopt the segments: %+v", st)
	}
	got := discoverAll(t, restored, specs, false)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("restored: spec %d diverged\nheap: %s\ndisk: %s", i, want[i], got[i])
		}
	}

	// Post-restore mutations flow through the hook into the tail.
	if err := restored.MutateDB(func(db *nebula.Database) error {
		row := db.MustTable("Gene").Rows()[0]
		return db.MustTable("Gene").UpdateByKey(row.ID.Key, "Name", nebula.String("post-restart"))
	}); err != nil {
		t.Fatal(err)
	}
	if st := restored.StoreStats(); st.DirtyRows == 0 {
		t.Fatalf("mutation did not dirty the tail: %+v", st)
	}
}

// TestStoreForeignSegmentsRebuilt: an engine with no snapshot lineage
// (fresh NewWithState) over a directory holding earlier generations must
// not trust them — the database is re-indexed into the tail, and answers
// match the heap engine exactly despite the leftover segment files.
func TestStoreForeignSegmentsRebuilt(t *testing.T) {
	storeDir := t.TempDir()

	first, ds := engineFixture(t, storeOpts(storeDir))
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 1, Max: 3})[:2]
	for _, spec := range specs {
		if err := first.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := first.Discover(specs[0].Ann.ID); err != nil {
		t.Fatal(err)
	}
	if err := first.FlushStore(t.Context()); err != nil {
		t.Fatal(err)
	}
	if err := first.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// A second engine over a DIFFERENT seed's database reuses the dir:
	// generation 0 expected, generation 1 found — full re-index pending.
	// Generation is deterministic, so generating twice gives the heap
	// comparator its own state without sharing the annotation store.
	ds2, err := workload.Generate(workload.TinyConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	second, err := nebula.NewWithState(ds2.DB, ds2.Meta, ds2.Store, ds2.Graph, storeOpts(storeDir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { second.CloseStore() })
	if st := second.StoreStats(); !st.FullPending {
		t.Fatalf("foreign segments adopted without a rebuild: %+v", st)
	}

	ds2b, err := workload.Generate(workload.TinyConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	heap2, err := nebula.NewWithState(ds2b.DB, ds2b.Meta, ds2b.Store, ds2b.Graph, storeOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	specs2 := ds2b.WorkloadSet(500, workload.RefClass{Min: 1, Max: 3})[:2]
	want := discoverAll(t, heap2, specs2, true)
	got := discoverAll(t, second, specs2, true)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("foreign dir: spec %d diverged\nheap: %s\ndisk: %s", i, want[i], got[i])
		}
	}
}
