// Package nebula is a proactive annotation management engine for relational
// databases, reproducing the system described in "Proactive Annotation
// Management in Relational Databases" (SIGMOD 2015).
//
// Conventional annotation managers are passive: they store and propagate
// whatever attachments users create, so databases drift into being
// under-annotated — an annotation's text often references database objects
// it was never attached to. Nebula closes that gap. When an annotation is
// inserted it is analyzed against the NebulaMeta metadata repository;
// signature maps highlight the words likely to be embedded references;
// weighted keyword queries are generated and executed (over the whole
// database, or approximately over the ACG neighborhood of the annotation's
// focal tuples); and the predicted attachments are routed through a
// verification pipeline whose confidence bounds are tuned adaptively to
// minimize expert effort.
//
// # Quick start
//
//	db := nebula.NewDatabase()
//	// ... create tables, insert tuples ...
//	repo := nebula.NewMetaRepository(db, nil)
//	// ... register concepts, patterns, ontologies ...
//	engine, err := nebula.New(db, repo, nebula.DefaultOptions())
//	// insert an annotation attached to one tuple
//	err = engine.AddAnnotation(&nebula.Annotation{ID: "a1", Body: "gene JW00014 ..."},
//	    []nebula.TupleID{geneTuple})
//	// discover its embedded references and route them for verification
//	disc, outcome, err := engine.Process("a1")
//
// The packages under internal/ implement the individual subsystems; this
// package is the supported public surface.
package nebula

import (
	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/discovery"
	"nebula/internal/keyword"
	"nebula/internal/meta"
	"nebula/internal/relational"
	"nebula/internal/sigmap"
	"nebula/internal/trace"
	"nebula/internal/verification"
)

// Re-exported relational substrate types. The engine operates over this
// package's in-memory relational database.
type (
	// Database is the in-memory relational database.
	Database = relational.Database
	// Schema defines a table.
	Schema = relational.Schema
	// Column defines one attribute of a table.
	Column = relational.Column
	// ForeignKey declares an FK–PK relationship.
	ForeignKey = relational.ForeignKey
	// Value is a typed cell value.
	Value = relational.Value
	// Row is a stored tuple.
	Row = relational.Row
	// TupleID identifies a tuple (table + canonical primary key).
	TupleID = relational.TupleID
	// StructuredQuery is a single-table conjunctive selection.
	StructuredQuery = relational.Query
	// Predicate is one comparison of a structured query.
	Predicate = relational.Predicate
)

// Column type and predicate operator constants.
const (
	TypeString = relational.TypeString
	TypeInt    = relational.TypeInt
	TypeFloat  = relational.TypeFloat

	OpEq            = relational.OpEq
	OpContainsToken = relational.OpContainsToken
	OpPrefix        = relational.OpPrefix
)

// Value constructors.
var (
	// String builds a string Value.
	String = relational.String
	// Int builds an int Value.
	Int = relational.Int
	// Float builds a float Value.
	Float = relational.Float
)

// NewDatabase returns an empty relational database.
func NewDatabase() *Database { return relational.NewDatabase() }

// Re-exported annotation model types (§3 of the paper).
type (
	// Annotation is a free-text curation artifact.
	Annotation = annotation.Annotation
	// AnnotationID identifies an annotation.
	AnnotationID = annotation.ID
	// Attachment is an (annotation, tuple) edge.
	Attachment = annotation.Attachment
	// AnnotationStore stores annotations and attachments.
	AnnotationStore = annotation.Store
	// IdealEdges is a reference edge set for quality metrics.
	IdealEdges = annotation.IdealEdges
	// EdgeKey identifies an (annotation, tuple) pair.
	EdgeKey = annotation.EdgeKey
	// QualityMetrics reports F_N / F_P against an ideal edge set.
	QualityMetrics = annotation.QualityMetrics
	// PropagatedRow pairs a query-result tuple with its annotations.
	PropagatedRow = annotation.PropagatedRow
	// PropagatedJoinRow pairs a joined output row with the annotations
	// propagated from both contributing tuples.
	PropagatedJoinRow = annotation.PropagatedJoinRow
)

// Attachment edge types.
const (
	TrueAttachment      = annotation.TrueAttachment
	PredictedAttachment = annotation.PredictedAttachment
)

// Re-exported NebulaMeta types (§5.1).
type (
	// MetaRepository is the NebulaMeta auxiliary metadata store.
	MetaRepository = meta.Repository
	// Concept is a ConceptRefs row.
	Concept = meta.Concept
	// ColumnRef names a table column.
	ColumnRef = meta.ColumnRef
	// Lexicon is the synonym dictionary.
	Lexicon = meta.Lexicon
)

// NewMetaRepository builds a NebulaMeta repository over a database; pass a
// nil lexicon for the built-in default.
func NewMetaRepository(db *Database, lex *Lexicon) *MetaRepository {
	return meta.NewRepository(db, lex)
}

// NewLexicon returns an empty synonym dictionary.
func NewLexicon() *Lexicon { return meta.NewLexicon() }

// DefaultLexicon returns the built-in synonym dictionary.
func DefaultLexicon() *Lexicon { return meta.DefaultLexicon() }

// Re-exported pipeline types.
type (
	// KeywordQuery is a generated keyword search query (Stage 1 output).
	KeywordQuery = keyword.Query
	// Keyword is one keyword of a KeywordQuery.
	Keyword = keyword.Keyword
	// GenerationStats reports Stage 1 phase timings and counts.
	GenerationStats = sigmap.Stats
	// Candidate is a predicted attachment (Stage 2 output).
	Candidate = discovery.Candidate
	// DiscoveryStats reports Stage 2 cost counters.
	DiscoveryStats = discovery.Stats
	// PlanStats reports the cost-based planner's decisions for one run.
	PlanStats = discovery.PlanStats
	// TraceNode is one node of a request-scoped trace tree (see
	// Options.Trace); Discovery.Trace is its root.
	TraceNode = trace.Node
	// SpamError is the concrete ErrSpamAnnotation error, carrying the
	// candidate and database counts quarantine tooling needs.
	SpamError = discovery.SpamError
	// ACG is the Annotations Connectivity Graph (§6.2).
	ACG = acg.Graph
	// HopProfile is the Figure 7 hop-distance histogram.
	HopProfile = acg.Profile
	// VerificationTask is a §7 verification task.
	VerificationTask = verification.Task
	// VerificationOutcome is the routing result of one submission.
	VerificationOutcome = verification.Outcome
	// Bounds are the β_lower/β_upper thresholds.
	Bounds = verification.Bounds
	// Assessment holds the Definition 7.2 criteria.
	Assessment = verification.Assessment
	// Oracle simulates or represents a verifying expert.
	Oracle = verification.Oracle
	// TrainingExample is a BoundsSetting training annotation.
	TrainingExample = verification.TrainingExample
	// BoundsConfig parameterizes BoundsSetting.
	BoundsConfig = verification.BoundsConfig
	// BoundsEvaluation is one grid point of a BoundsSetting run.
	BoundsEvaluation = verification.BoundsEvaluation
)

// IdealOracle adapts an ideal edge set into an Oracle.
func IdealOracle(ideal IdealEdges) Oracle { return verification.IdealOracle(ideal) }

// DefaultBoundsConfig returns the standard BoundsSetting configuration.
func DefaultBoundsConfig() BoundsConfig { return verification.DefaultBoundsConfig() }

// Assess computes the Definition 7.2 criteria for one annotation's
// candidates under the given bounds.
func Assess(a AnnotationID, candidates []Candidate, bounds Bounds, oracle Oracle, nIdeal, nFocal int) Assessment {
	return verification.Assess(a, candidates, bounds, oracle, nIdeal, nFocal)
}

// AverageAssessments combines per-annotation assessments by mean.
func AverageAssessments(as []Assessment) Assessment { return verification.Average(as) }
