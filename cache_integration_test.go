package nebula_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"nebula"
	"nebula/internal/relational"
	"nebula/internal/workload"
)

// renderDiscovery folds a run into the identity rendering the cache must
// preserve: candidates, their order, confidences, evidence, and the query
// count. Cost counters are excluded by design — stats account actual work,
// and a cache hit legitimately does less of it.
func renderDiscovery(d *nebula.Discovery) string {
	var b strings.Builder
	fmt.Fprintf(&b, "q=%d:", len(d.Queries))
	for _, c := range d.Candidates {
		fmt.Fprintf(&b, " %s=%.9f[%s]", c.Tuple.ID, c.Confidence, strings.Join(c.Evidence, ","))
	}
	return b.String()
}

// cacheFixture builds an engine over a fresh tiny dataset with the given
// cache configuration and seeds n workload annotations.
func cacheFixture(t testing.TB, cache nebula.CacheConfig, n int) (*nebula.Engine, []*workload.AnnotationSpec) {
	t.Helper()
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	opts := nebula.DefaultOptions()
	opts.Cache = cache
	e, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})
	if len(specs) < n {
		t.Fatalf("fixture has only %d workload specs, need %d", len(specs), n)
	}
	specs = specs[:n]
	for _, spec := range specs {
		if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			t.Fatal(err)
		}
	}
	return e, specs
}

// TestCacheOnOffByteIdentity drives a cached and an uncached engine through
// the same interleaved mutate/discover script over identical datasets and
// requires byte-identical results at every step — including the steps where
// the cached engine is serving warm hits and the steps right after
// mutations invalidate them.
func TestCacheOnOffByteIdentity(t *testing.T) {
	cached, specs := cacheFixture(t, nebula.CacheConfig{}, 3)
	plain, _ := cacheFixture(t, nebula.CacheConfig{Disabled: true}, 3)

	if !cached.CacheStats().Enabled {
		t.Fatal("zero-value CacheConfig should enable caching")
	}
	if plain.CacheStats().Enabled {
		t.Fatal("Disabled CacheConfig should disable caching")
	}

	step := func(label string, f func(e *nebula.Engine) (string, error)) {
		t.Helper()
		got, err := f(cached)
		if err != nil {
			t.Fatalf("%s (cached): %v", label, err)
		}
		want, err := f(plain)
		if err != nil {
			t.Fatalf("%s (uncached): %v", label, err)
		}
		if got != want {
			t.Errorf("%s: cached run diverged\ncached:   %s\nuncached: %s", label, got, want)
		}
	}
	discover := func(id nebula.AnnotationID) func(e *nebula.Engine) (string, error) {
		return func(e *nebula.Engine) (string, error) {
			d, err := e.Discover(id)
			if err != nil {
				return "", err
			}
			return renderDiscovery(d), nil
		}
	}

	// Cold, warm, warm again: the second and third cached runs are hits.
	step("discover#1", discover(specs[0].Ann.ID))
	step("discover#2", discover(specs[0].Ann.ID))
	step("discover#3", discover(specs[1].Ann.ID))
	step("discover#4", discover(specs[1].Ann.ID))

	// Data mutation: delete spec[2]'s focal tuple on both engines, then
	// rediscover — the cached engine must recompute, not serve stale rows.
	victim := specs[2].Focal(1)[0]
	step("delete-tuple", func(e *nebula.Engine) (string, error) {
		detached, cancelled, err := e.DeleteTuple(victim)
		return fmt.Sprintf("detached=%d cancelled=%d", detached, cancelled), err
	})
	step("discover-after-delete", discover(specs[0].Ann.ID))
	step("rediscover-after-delete", discover(specs[1].Ann.ID))

	// Raw row insert (below the engine API, visible via table epochs).
	step("insert-row", func(e *nebula.Engine) (string, error) {
		_, err := e.DB().MustTable("Gene").Insert([]relational.Value{
			relational.String("JW99999"), relational.String("zzz"),
			relational.Int(1234), relational.String("ACGT"), relational.String("F1"),
		})
		return "ok", err
	})
	step("discover-after-insert", discover(specs[0].Ann.ID))
	step("discover-after-insert-warm", discover(specs[0].Ann.ID))

	if hits := cached.CacheStats().Discovery.Hits; hits < 3 {
		t.Errorf("cached engine served %d discovery-cache hits across the script, want >= 3", hits)
	}
	if hits := plain.CacheStats().Totals().Hits; hits != 0 {
		t.Errorf("uncached engine reported %d cache hits, want 0", hits)
	}
}

// TestCacheInvalidationOnMutation pins the epoch protocol at the discovery
// layer: a repeat Discover is a hit, every class of mutation (row insert,
// tuple delete, annotation add, attachment verdict) forces the next run to
// miss, and the run after that is warm again.
func TestCacheInvalidationOnMutation(t *testing.T) {
	e, specs := cacheFixture(t, nebula.CacheConfig{}, 3)
	id := specs[0].Ann.ID

	discoverHits := func() int64 { return e.CacheStats().Discovery.Hits }
	discover := func(label string) {
		t.Helper()
		if _, err := e.Discover(id); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
	}
	expectMissThenHit := func(label string) {
		t.Helper()
		before := discoverHits()
		discover(label)
		if got := discoverHits(); got != before {
			t.Fatalf("%s: discover served a stale cache hit (hits %d -> %d)", label, before, got)
		}
		discover(label + "/warm")
		if got := discoverHits(); got != before+1 {
			t.Fatalf("%s: repeat discover should hit (hits %d -> %d)", label, before, got)
		}
	}

	expectMissThenHit("cold")

	if _, err := e.DB().MustTable("Gene").Insert([]relational.Value{
		relational.String("JW88888"), relational.String("yyy"),
		relational.Int(777), relational.String("TTTT"), relational.String("F2"),
	}); err != nil {
		t.Fatal(err)
	}
	expectMissThenHit("after-insert")

	if _, _, err := e.DeleteTuple(specs[2].Focal(1)[0]); err != nil {
		t.Fatal(err)
	}
	expectMissThenHit("after-delete")

	if err := e.AddAnnotation(&nebula.Annotation{ID: "cache-probe", Body: specs[1].Ann.Body},
		specs[1].Focal(1)); err != nil {
		t.Fatal(err)
	}
	expectMissThenHit("after-add-annotation")

	// Attachment verdicts mutate the ACG, which feeds focal adjustment.
	if _, _, err := e.Process(specs[1].Ann.ID); err != nil {
		t.Fatal(err)
	}
	if tasks := e.PendingTasks(); len(tasks) > 0 {
		if err := e.VerifyAttachment(tasks[0].VID); err != nil {
			t.Fatal(err)
		}
	}
	expectMissThenHit("after-verify")

	inv := e.CacheStats().Discovery.Invalidations
	if inv < 4 {
		t.Errorf("discovery cache recorded %d invalidations, want >= 4", inv)
	}
}

// TestCacheSnapshotRestoreStartsCold checks the restore coherence rule:
// caches are not serialized, so a restored engine starts cold with zeroed
// counters — and still computes the same results as the warm original.
func TestCacheSnapshotRestoreStartsCold(t *testing.T) {
	// Build the original engine over a rebuildable meta repository (the
	// same BuildMeta call the restore path uses, with the same rng seed)
	// so the restored engine's configuration is exactly reproducible and
	// the byte-identity check below is meaningful.
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := workload.BuildMeta(ds.DB, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	e, err := nebula.NewWithState(ds.DB, repo, ds.Store, ds.Graph, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	specs := ds.WorkloadSet(500, workload.RefClass{Min: 4, Max: 6})[:2]
	for _, spec := range specs {
		if err := e.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			t.Fatal(err)
		}
	}
	id := specs[0].Ann.ID
	warm, err := e.Discover(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Discover(id); err != nil { // populate the discovery cache
		t.Fatal(err)
	}
	if e.CacheStats().Totals().Bytes == 0 {
		t.Fatal("warm engine reports zero cache occupancy")
	}

	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	configure := func(db *nebula.Database) (*nebula.MetaRepository, error) {
		return workload.BuildMeta(db, rand.New(rand.NewSource(7)))
	}
	restored, err := nebula.RestoreEngine(bytes.NewReader(buf.Bytes()), configure, nebula.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	cs := restored.CacheStats()
	if !cs.Enabled {
		t.Error("restored engine should have caching enabled under default options")
	}
	if tot := cs.Totals(); tot.Hits != 0 || tot.Misses != 0 || tot.Bytes != 0 || tot.Entries != 0 {
		t.Errorf("restored engine caches are not cold: %+v", tot)
	}

	cold, err := restored.Discover(id)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderDiscovery(cold), renderDiscovery(warm); got != want {
		t.Errorf("restored engine diverged from the original\nrestored: %s\noriginal: %s", got, want)
	}
}

// TestCacheConcurrentDiscoverMutate hammers a caching engine with
// concurrent discovery, annotation mutation, raw row churn, and snapshot
// writes. It asserts nothing beyond "no error": the payoff is running
// under -race (make check runs the suite race-enabled), where a torn epoch
// read or an unguarded cache map would be reported.
func TestCacheConcurrentDiscoverMutate(t *testing.T) {
	e, specs := cacheFixture(t, nebula.CacheConfig{}, 3)
	const iters = 8
	var wg sync.WaitGroup

	for _, spec := range specs {
		id := spec.Ann.ID
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := e.Discover(id); err != nil {
					t.Errorf("discover %s: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // annotation churn: every Add bumps the mutation epoch
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ann := &nebula.Annotation{ID: nebula.AnnotationID(fmt.Sprintf("churn-%d", i)), Body: specs[0].Ann.Body}
			if err := e.AddAnnotation(ann, specs[0].Focal(1)); err != nil {
				t.Errorf("add churn-%d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // raw row churn: table epochs move under the scan cache
		defer wg.Done()
		for i := 0; i < iters; i++ {
			// Tables are not internally synchronized; MutateDB takes the
			// engine write lock so the insert is exclusive with the
			// concurrent discoveries and snapshot captures above.
			err := e.MutateDB(func(db *nebula.Database) error {
				_, err := db.MustTable("Gene").Insert([]relational.Value{
					relational.String(fmt.Sprintf("JW7%04d", i)), relational.String("rrr"),
					relational.Int(int64(100 + i)), relational.String("GATC"), relational.String("F3"),
				})
				return err
			})
			if err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // snapshot writes walk all engine state mid-flight
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			if err := e.SaveSnapshot(io.Discard); err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestCacheStatsAndLimit covers the operator control surface: live budget
// resizing, rejection of nonsense budgets, and the disabled-engine error.
func TestCacheStatsAndLimit(t *testing.T) {
	e, _ := cacheFixture(t, nebula.CacheConfig{}, 1)
	if err := e.SetCacheLimit(9_999_999); err != nil {
		t.Fatal(err)
	}
	if got := e.CacheStats().Scan.MaxBytes; got != 3_333_333 {
		t.Errorf("scan layer budget after resize = %d, want a third of the total", got)
	}
	if got := e.Options().Cache.MaxBytes; got != 9_999_999 {
		t.Errorf("Options().Cache.MaxBytes = %d after SetCacheLimit", got)
	}
	if err := e.SetCacheLimit(0); err == nil {
		t.Error("SetCacheLimit(0) should be rejected")
	}
	if err := e.SetCacheLimit(-5); err == nil {
		t.Error("SetCacheLimit(-5) should be rejected")
	}

	off, _ := cacheFixture(t, nebula.CacheConfig{Disabled: true}, 1)
	if err := off.SetCacheLimit(1 << 20); err == nil {
		t.Error("SetCacheLimit on a cache-disabled engine should error")
	}
	if cs := off.CacheStats(); cs.Enabled {
		t.Errorf("disabled engine reports Enabled=true: %+v", cs)
	}
}

// TestCacheRequestOptionOverride checks the per-request escape hatch: a
// request with Cache "off" must do real work even on a warm engine, and an
// invalid mode is rejected by validation.
func TestCacheRequestOptionOverride(t *testing.T) {
	e, specs := cacheFixture(t, nebula.CacheConfig{}, 1)
	id := specs[0].Ann.ID
	if _, err := e.Discover(id); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Discover(id); err != nil { // warm the discovery cache
		t.Fatal(err)
	}
	before := e.CacheStats().Discovery.Hits
	if before == 0 {
		t.Fatal("warm-up discover did not hit the discovery cache")
	}
	d, err := e.DiscoverRequest(context.Background(), id, nebula.RequestOptions{Cache: "off"})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.CacheStats().Discovery.Hits; got != before {
		t.Errorf("Cache:\"off\" request hit the discovery cache (hits %d -> %d)", before, got)
	}
	if d.ExecStats.Exec.TuplesScanned == 0 && d.ExecStats.Exec.TuplesReturned == 0 {
		t.Error("Cache:\"off\" request reported no scan work at all")
	}
	if err := (nebula.RequestOptions{Cache: "sometimes"}).Validate(); err == nil {
		t.Error("invalid cache mode accepted by RequestOptions.Validate")
	}
}

// TestCacheGovernorCommand drives the sqlish CACHE clause end to end:
// CACHE OFF bypasses the cache for that statement, a byte count resizes
// the live budget, and malformed forms are rejected at parse time.
func TestCacheGovernorCommand(t *testing.T) {
	e, specs := cacheFixture(t, nebula.CacheConfig{}, 1)
	id := specs[0].Ann.ID

	if _, err := e.ExecCommand(fmt.Sprintf("DISCOVER '%s' CACHE ON", id)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecCommand(fmt.Sprintf("DISCOVER '%s' CACHE ON", id)); err != nil {
		t.Fatal(err)
	}
	warmHits := e.CacheStats().Discovery.Hits
	if warmHits == 0 {
		t.Fatal("repeat DISCOVER ... CACHE ON did not hit the discovery cache")
	}

	if _, err := e.ExecCommand(fmt.Sprintf("DISCOVER '%s' CACHE OFF", id)); err != nil {
		t.Fatal(err)
	}
	if got := e.CacheStats().Discovery.Hits; got != warmHits {
		t.Errorf("DISCOVER ... CACHE OFF hit the discovery cache (hits %d -> %d)", warmHits, got)
	}

	if _, err := e.ExecCommand(fmt.Sprintf("DISCOVER '%s' CACHE 4194304", id)); err != nil {
		t.Fatal(err)
	}
	if got := e.CacheStats().Scan.MaxBytes; got != 4194304/3 {
		t.Errorf("CACHE 4194304 left the scan layer at %d bytes, want %d", got, 4194304/3)
	}

	for _, bad := range []string{
		fmt.Sprintf("DISCOVER '%s' CACHE", id),
		fmt.Sprintf("DISCOVER '%s' CACHE MAYBE", id),
		fmt.Sprintf("DISCOVER '%s' CACHE -1", id),
		fmt.Sprintf("DISCOVER '%s' CACHE 0", id),
	} {
		if _, err := e.ExecCommand(bad); err == nil {
			t.Errorf("%q accepted, want parse error", bad)
		}
	}
}
